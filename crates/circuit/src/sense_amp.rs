//! Latch-type sense amplifier model.
//!
//! Both the SRAM and DRAM paths use a cross-coupled latch sense amplifier;
//! its regeneration time is `τ·ln(V_latch/ΔV_in)` with `τ = C_latch/g_m`.
//! DRAM sense amps are pitch-matched to the (much tighter) bitline pitch,
//! which folds their devices and makes them taller — captured through the
//! area model.

use crate::area::transistor_area;
use crate::BlockResult;
use cactid_tech::DeviceParams;
use cactid_units::{Farads, Meters, Seconds, Volts};

/// A sense amplifier instance (one per bitline pair after bitline muxing).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SenseAmp {
    /// Width of each cross-coupled device.
    pub w_latch: Meters,
    /// Internal latch node capacitance, including any external load the
    /// latch must regenerate (the full bitline, for DRAM).
    pub c_latch: Farads,
    /// Internal (latch-only) capacitance used for energy accounting —
    /// external bitline energy is accounted by the array model.
    pub c_internal: Farads,
    /// Bitline-pair pitch this amp must fit within.
    pub pitch: Meters,
    /// Fraction of the device transconductance available (offset
    /// compensation and conservative biasing derate it; 1.0 = ideal).
    pub gm_derate: f64,
}

impl SenseAmp {
    /// Designs a sense amp under `dev`, pitch-matched to `pitch` (two cell
    /// widths for a folded differential pair).
    pub fn design(dev: &DeviceParams, pitch: Meters) -> SenseAmp {
        SenseAmp::design_with_load(dev, pitch, Farads::ZERO, 1.0)
    }

    /// Designs a sense amp that must regenerate an additional external
    /// capacitance `c_extra` (a DRAM sense amp swings the whole bitline),
    /// with its transconductance derated by `gm_derate ∈ (0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `gm_derate` is not in `(0, 1]` or `c_extra` is negative.
    pub fn design_with_load(
        dev: &DeviceParams,
        pitch: Meters,
        c_extra: Farads,
        gm_derate: f64,
    ) -> SenseAmp {
        assert!(gm_derate > 0.0 && gm_derate <= 1.0, "gm_derate in (0,1]");
        assert!(c_extra >= Farads::ZERO);
        let w_latch = 8.0 * dev.min_width;
        // Two cross-coupled inverters: gate + drain of the opposing pair.
        let c_internal = (dev.c_gate + dev.c_drain) * w_latch * (1.0 + dev.p_to_n_ratio);
        SenseAmp {
            w_latch,
            c_latch: c_internal + c_extra,
            c_internal,
            pitch,
            gm_derate,
        }
    }

    /// Regeneration delay to amplify an input differential of `v_in` to a
    /// full `v_latch` swing.
    ///
    /// # Panics
    ///
    /// Panics if `v_in` is not positive or exceeds `v_latch`.
    pub fn delay(&self, dev: &DeviceParams, v_in: Volts, v_latch: Volts) -> Seconds {
        assert!(
            v_in > Volts::ZERO,
            "sense input differential must be positive"
        );
        assert!(v_in <= v_latch, "input differential larger than swing");
        let gm = dev.g_m * self.w_latch * self.gm_derate;
        let tau = self.c_latch / gm;
        tau * (v_latch / v_in).ln()
    }

    /// Evaluates one sensing event at latch swing `v_latch`.
    pub fn evaluate(&self, dev: &DeviceParams, v_in: Volts, v_latch: Volts) -> BlockResult {
        let delay = self.delay(dev, v_in, v_latch);
        // The latch nodes make a full differential transition; external
        // (bitline) energy is accounted by the array model.
        let energy = self.c_internal * v_latch * v_latch;
        // Cross-coupled pair + enable device leak.
        let leakage = dev.leak_power(self.w_latch * 1.5);
        let f = dev.min_width / 2.5;
        // 6 devices folded into the bitline pitch.
        let dev_area = transistor_area(6.0 * self.w_latch, self.pitch.max(4.0 * f), f);
        BlockResult {
            delay,
            ramp_out: delay,
            energy,
            leakage,
            area: dev_area.area().max(self.pitch * 20.0 * f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cactid_tech::{DeviceType, TechNode, Technology};
    use cactid_units::Joules;

    fn dev() -> DeviceParams {
        Technology::new(TechNode::N32).device(DeviceType::HpLongChannel)
    }

    const PITCH: Meters = Meters::from_si(0.13e-6);

    #[test]
    fn smaller_input_signal_takes_longer() {
        let d = dev();
        let sa = SenseAmp::design(&d, PITCH);
        let strong = sa.delay(&d, Volts::from_si(0.2), Volts::from_si(0.9));
        let weak = sa.delay(&d, Volts::from_si(0.05), Volts::from_si(0.9));
        assert!(weak > strong);
    }

    #[test]
    fn delay_in_tens_of_ps() {
        let d = dev();
        let sa = SenseAmp::design(&d, PITCH);
        let t = sa.delay(&d, Volts::from_si(0.1), Volts::from_si(0.9));
        assert!(t > Seconds::ps(1.0) && t < Seconds::ps(300.0), "{t}");
    }

    #[test]
    fn lstp_amp_is_slower_than_hp_amp() {
        let tech = Technology::new(TechNode::N32);
        let hp = tech.device(DeviceType::Hp);
        let lstp = tech.device(DeviceType::Lstp);
        let sa_hp = SenseAmp::design(&hp, PITCH);
        let sa_lstp = SenseAmp::design(&lstp, PITCH);
        assert!(
            sa_lstp.delay(&lstp, Volts::from_si(0.1), Volts::from_si(1.0))
                > sa_hp.delay(&hp, Volts::from_si(0.1), Volts::from_si(0.9))
        );
    }

    #[test]
    fn tight_pitch_grows_area() {
        let d = dev();
        let tight = SenseAmp::design(&d, Meters::from_si(0.064e-6)).evaluate(
            &d,
            Volts::from_si(0.1),
            Volts::from_si(0.9),
        );
        let loose = SenseAmp::design(&d, Meters::um(1.0)).evaluate(
            &d,
            Volts::from_si(0.1),
            Volts::from_si(0.9),
        );
        // Same devices, tighter pitch → more folding → at least as much area.
        assert!(tight.area >= loose.area * 0.5);
    }

    #[test]
    fn external_load_slows_sensing_without_energy_cost() {
        let d = dev();
        let bare = SenseAmp::design(&d, PITCH);
        let loaded = SenseAmp::design_with_load(&d, PITCH, Farads::ff(80.0), 1.0);
        assert!(
            loaded.delay(&d, Volts::from_si(0.1), Volts::from_si(0.9))
                > 3.0 * bare.delay(&d, Volts::from_si(0.1), Volts::from_si(0.9))
        );
        let eb = bare
            .evaluate(&d, Volts::from_si(0.1), Volts::from_si(0.9))
            .energy;
        let el = loaded
            .evaluate(&d, Volts::from_si(0.1), Volts::from_si(0.9))
            .energy;
        assert!(
            (eb - el).abs() < Joules::from_si(1e-20),
            "latch-internal energy only"
        );
    }

    #[test]
    fn gm_derate_slows_sensing() {
        let d = dev();
        let ideal = SenseAmp::design_with_load(&d, PITCH, Farads::ZERO, 1.0);
        let derated = SenseAmp::design_with_load(&d, PITCH, Farads::ZERO, 0.2);
        let r = derated.delay(&d, Volts::from_si(0.1), Volts::from_si(0.9))
            / ideal.delay(&d, Volts::from_si(0.1), Volts::from_si(0.9));
        assert!((r - 5.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_signal() {
        let d = dev();
        SenseAmp::design(&d, PITCH).delay(&d, Volts::ZERO, Volts::from_si(0.9));
    }
}
