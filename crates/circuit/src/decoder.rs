//! Row-decoder model: predecoders, final NAND decode, and pitch-matched
//! wordline drivers, sized by logical effort (Amrutur & Horowitz style).

use crate::area::{gate_area, transistor_area, GATE_PITCH_F};
use crate::driver::BufferChain;
use crate::horowitz::stage;
use crate::BlockResult;
use cactid_tech::DeviceParams;
use cactid_units::{energy_cv2, Farads, Meters, Ohms, Seconds, Volts};

/// Bits decoded per predecode group (1-of-8 predecoding).
const PREDEC_GROUP_BITS: usize = 3;
/// Input width of each final-decode NAND gate, as a multiple of the
/// device's minimum width.
const NAND_INPUT_W_MULT: f64 = 3.0;

/// A complete row-decode path for one subarray: predecode, final NAND per
/// row, and a wordline driver chain, evaluated against a given wordline
/// load.
#[derive(Debug, Clone, PartialEq)]
pub struct Decoder {
    /// Number of rows decoded (power of two).
    pub n_rows: usize,
    /// Number of predecode groups.
    pub n_groups: usize,
    /// Driver chain from a predecode output onto the predecode line.
    predec_driver: BufferChain,
    /// Capacitive load of one predecode line.
    c_predec_line: Farads,
    /// Wordline driver chain (final NAND output → wordline).
    wl_driver: BufferChain,
    /// Wordline lumped capacitance.
    c_wordline: Farads,
    /// Wordline distributed resistance.
    r_wordline: Ohms,
    /// Voltage the wordline swings to (V_PP for DRAM).
    v_wordline: Volts,
    /// Height budget per row for pitch-matching (the cell height).
    wl_pitch: Meters,
}

impl Decoder {
    /// Designs a decoder for `n_rows` rows whose wordline presents
    /// capacitance `c_wordline` and distributed resistance `r_wordline`,
    /// swinging to `v_wordline`. `predec_wire_cap` is the wire load of a
    /// predecode line crossing the subarray edge, and `wl_pitch` the cell
    /// height the per-row circuits must pitch-match.
    ///
    /// # Panics
    ///
    /// Panics if `n_rows` is not a power of two ≥ 2.
    pub fn design(
        dev: &DeviceParams,
        n_rows: usize,
        c_wordline: Farads,
        r_wordline: Ohms,
        v_wordline: Volts,
        predec_wire_cap: Farads,
        wl_pitch: Meters,
    ) -> Decoder {
        assert!(
            n_rows >= 2 && n_rows.is_power_of_two(),
            "n_rows must be a power of two ≥ 2, got {n_rows}"
        );
        let n_addr = n_rows.trailing_zeros() as usize;
        let n_groups = n_addr.div_ceil(PREDEC_GROUP_BITS).max(1);
        let c_nand_in = NAND_INPUT_W_MULT * dev.min_width * dev.c_gate;
        // Each predecode line loads the NAND inputs of the rows it selects.
        let lines_per_group = 1usize << PREDEC_GROUP_BITS.min(n_addr);
        let fanout_rows = n_rows / lines_per_group.max(1);
        let c_predec_line = predec_wire_cap + fanout_rows as f64 * c_nand_in;
        let predec_driver = BufferChain::design(dev, dev.c_inv_min(), c_predec_line);
        let wl_driver = BufferChain::design(
            dev,
            // The NAND output drives the first wordline-driver stage.
            4.0 * dev.c_inv_min(),
            c_wordline,
        );
        Decoder {
            n_rows,
            n_groups,
            predec_driver,
            c_predec_line,
            wl_driver,
            c_wordline,
            r_wordline,
            v_wordline,
            wl_pitch,
        }
    }

    /// Evaluates the decode path: delay of the activated path, energy per
    /// access, leakage of the whole decode structure, and its layout area.
    pub fn evaluate(&self, dev: &DeviceParams, input_ramp: Seconds) -> BlockResult {
        // --- Predecode NAND3 + line driver ---
        let w_pn = NAND_INPUT_W_MULT * dev.min_width;
        let nand_stack_r = dev.res_on_n(w_pn) * PREDEC_GROUP_BITS as f64;
        let c_pd_first = self.predec_driver.stage_caps[0];
        let tf_pnand = nand_stack_r * (dev.cap_drain(w_pn * 3.0) + c_pd_first);
        let (d_pnand, ramp1) = stage(input_ramp, tf_pnand, 0.5);
        let pd = self.predec_driver.evaluate(dev, ramp1);

        // --- Final NAND (fan-in = n_groups) ---
        let w_fn = NAND_INPUT_W_MULT * dev.min_width;
        let fnand_r = dev.res_on_n(w_fn) * self.n_groups.max(2) as f64;
        let c_wl_first = self.wl_driver.stage_caps[0];
        let tf_fnand = fnand_r * (dev.cap_drain(w_fn * 3.0) + c_wl_first);
        let (d_fnand, ramp2) = stage(pd.ramp_out, tf_fnand, 0.5);

        // --- Wordline driver chain + distributed wordline RC ---
        let wl = self.wl_driver.evaluate_at(dev, ramp2, self.v_wordline);
        let d_wire = 0.38 * self.r_wordline * self.c_wordline;

        let delay = d_pnand + pd.delay + d_fnand + wl.delay + d_wire;

        // --- Energy (activated path only) ---
        // Two predecode lines toggle per group (one rises, one falls).
        let e_predec =
            self.n_groups as f64 * (self.c_predec_line * dev.vdd * dev.vdd + 2.0 * pd.energy / 2.0);
        let e_fnand = energy_cv2(dev.cap_drain(w_fn * 3.0), dev.vdd);
        // The wordline rises and falls every access: full C·V².
        let e_wl = wl.energy + energy_cv2(self.c_wordline, self.v_wordline);
        let energy = e_predec + e_fnand + e_wl;

        // --- Leakage (every row's NAND + driver leaks) ---
        let leak_row = dev.leak_power(w_fn * (1.0 + dev.p_to_n_ratio)) + wl.leakage;
        let leak_predec = self.n_groups as f64 * 8.0 * pd.leakage;
        let leakage = self.n_rows as f64 * leak_row + leak_predec;

        // --- Area ---
        let f = dev.min_width / 2.5;
        let nand_area = gate_area(w_fn * 2.0, w_fn * 2.0, self.wl_pitch.max(4.0 * f), f);
        let mut row_width = nand_area.width;
        for (i, _) in self.wl_driver.stage_caps.iter().enumerate() {
            let w_n = self.wl_driver.stage_width_n(dev, i);
            let w_p = w_n * dev.p_to_n_ratio;
            row_width +=
                transistor_area(w_n + w_p, self.wl_pitch.max(4.0 * f), f).width + GATE_PITCH_F * f;
        }
        let rows_area = self.n_rows as f64 * row_width * self.wl_pitch;
        let predec_area = self.n_groups as f64 * 8.0 * pd.area * 1.5;
        let area = rows_area + predec_area;

        BlockResult {
            delay,
            ramp_out: wl.ramp_out,
            energy,
            leakage,
            area,
        }
    }

    /// Delay of the activated decode path for `input_ramp` — exactly the
    /// delay component of [`Decoder::evaluate`], without its
    /// ramp-independent energy/leakage/area bookkeeping. Callers that have
    /// already evaluated the decoder at a zero ramp (for area and energy)
    /// re-time it here when the real input ramp becomes known.
    pub fn delay(&self, dev: &DeviceParams, input_ramp: Seconds) -> Seconds {
        let w_pn = NAND_INPUT_W_MULT * dev.min_width;
        let nand_stack_r = dev.res_on_n(w_pn) * PREDEC_GROUP_BITS as f64;
        let c_pd_first = self.predec_driver.stage_caps[0];
        let tf_pnand = nand_stack_r * (dev.cap_drain(w_pn * 3.0) + c_pd_first);
        let (d_pnand, ramp1) = stage(input_ramp, tf_pnand, 0.5);
        let (pd_delay, pd_ramp) = self.predec_driver.delay(dev, ramp1);

        let w_fn = NAND_INPUT_W_MULT * dev.min_width;
        let fnand_r = dev.res_on_n(w_fn) * self.n_groups.max(2) as f64;
        let c_wl_first = self.wl_driver.stage_caps[0];
        let tf_fnand = fnand_r * (dev.cap_drain(w_fn * 3.0) + c_wl_first);
        let (d_fnand, ramp2) = stage(pd_ramp, tf_fnand, 0.5);

        let (wl_delay, _) = self.wl_driver.delay(dev, ramp2);
        let d_wire = 0.38 * self.r_wordline * self.c_wordline;
        d_pnand + pd_delay + d_fnand + wl_delay + d_wire
    }

    /// The horizontal width the decode strip adds to a subarray:
    /// area divided by the array height it runs along.
    pub fn strip_width(&self, dev: &DeviceParams) -> Meters {
        let r = self.evaluate(dev, Seconds::ZERO);
        r.area / (self.n_rows as f64 * self.wl_pitch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cactid_tech::{DeviceType, TechNode, Technology};

    fn dev() -> DeviceParams {
        Technology::new(TechNode::N32).device(DeviceType::HpLongChannel)
    }

    fn mk(n_rows: usize) -> Decoder {
        let d = dev();
        Decoder::design(
            &d,
            n_rows,
            Farads::ff(50.0),
            Ohms::kohm(2.0),
            d.vdd,
            Farads::ff(10.0),
            Meters::from_si(0.3e-6),
        )
    }

    #[test]
    fn delay_only_path_matches_evaluate_bitwise() {
        let d = dev();
        let dec = Decoder::design(
            &d,
            1024,
            Farads::from_si(2e-13),
            Ohms::from_si(9e3),
            d.vdd,
            Farads::from_si(3e-14),
            Meters::from_si(1.4e-7),
        );
        for ramp_ps in [0.0, 3.7, 55.0, 410.0] {
            let ramp = Seconds::ps(ramp_ps);
            assert_eq!(dec.delay(&d, ramp), dec.evaluate(&d, ramp).delay);
        }
    }

    #[test]
    fn more_rows_cost_more_leakage_and_area() {
        let d = dev();
        let small = mk(64).evaluate(&d, Seconds::ZERO);
        let big = mk(512).evaluate(&d, Seconds::ZERO);
        assert!(big.leakage > small.leakage);
        assert!(big.area > small.area);
        // Delay grows only logarithmically — should be within 2×.
        assert!(big.delay < 2.0 * small.delay);
    }

    #[test]
    fn boosted_wordline_costs_energy() {
        let d = dev();
        let normal = Decoder::design(
            &d,
            256,
            Farads::ff(60.0),
            Ohms::kohm(3.0),
            d.vdd,
            Farads::ff(10.0),
            Meters::from_si(0.1e-6),
        );
        let boosted = Decoder::design(
            &d,
            256,
            Farads::ff(60.0),
            Ohms::kohm(3.0),
            Volts::from_si(2.6),
            Farads::ff(10.0),
            Meters::from_si(0.1e-6),
        );
        assert!(
            boosted.evaluate(&d, Seconds::ZERO).energy > normal.evaluate(&d, Seconds::ZERO).energy
        );
    }

    #[test]
    fn heavier_wordline_is_slower() {
        let d = dev();
        let light = Decoder::design(
            &d,
            256,
            Farads::ff(20.0),
            Ohms::kohm(1.0),
            d.vdd,
            Farads::ff(10.0),
            Meters::from_si(0.1e-6),
        );
        let heavy = Decoder::design(
            &d,
            256,
            Farads::ff(400.0),
            Ohms::kohm(20.0),
            d.vdd,
            Farads::ff(10.0),
            Meters::from_si(0.1e-6),
        );
        assert!(heavy.evaluate(&d, Seconds::ZERO).delay > light.evaluate(&d, Seconds::ZERO).delay);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        mk(100);
    }

    #[test]
    fn delay_is_nanoscale_sane() {
        let d = dev();
        let r = mk(256).evaluate(&d, Seconds::ZERO);
        // A 256-row decode at 32 nm should land well under a nanosecond.
        assert!(
            r.delay > Seconds::ps(10.0) && r.delay < Seconds::ns(1.0),
            "{}",
            r.delay
        );
    }
}
