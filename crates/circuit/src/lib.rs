//! Circuit-level primitives for the CACTI-D reproduction.
//!
//! The array-organization models in `cactid-core` are assembled from the
//! building blocks in this crate, which mirror the circuit methodology the
//! paper inherits from CACTI 5 (§2.3): the method of logical effort for
//! sizing decoders and drivers (following Amrutur & Horowitz), the Horowitz
//! gate-delay approximation with input-slope tracking, analytical gate area
//! with folding under pitch-matching constraints, optimal repeater insertion
//! for long wires (with the `max_repeater_delay` relaxation knob of §2.4),
//! sense amplifiers, and an Orion-style crossbar model used for the L2↔L3
//! interconnect in the LLC study.
//!
//! Everything is expressed in the typed SI quantities of [`cactid_units`]
//! and parameterized by a [`cactid_tech::DeviceParams`] so the same circuit
//! works across device classes (HP / long-channel HP / LSTP / LOP) and
//! nodes — and a dimensionally wrong formula is a compile error.
//!
//! # Example: sizing a driver chain
//!
//! ```
//! use cactid_tech::{Technology, TechNode, DeviceType};
//! use cactid_circuit::driver::BufferChain;
//! use cactid_units::{Farads, Seconds};
//!
//! let tech = Technology::new(TechNode::N32);
//! let dev = tech.device(DeviceType::Hp);
//! // Drive a 200 fF load from a minimum-size inverter.
//! let chain = BufferChain::design(&dev, dev.c_inv_min(), Farads::ff(200.0));
//! let result = chain.evaluate(&dev, Seconds::ZERO);
//! assert!(result.delay > Seconds::ZERO && result.delay < Seconds::ns(1.0));
//! ```

pub mod area;
pub mod crossbar;
pub mod decoder;
pub mod driver;
pub mod horowitz;
pub mod logical_effort;
pub mod mux;
pub mod repeater;
pub mod sense_amp;

pub use area::GateArea;
pub use crossbar::Crossbar;
pub use decoder::Decoder;
pub use driver::{BufferChain, StageResult};
pub use horowitz::horowitz;
pub use repeater::RepeatedWire;
pub use sense_amp::SenseAmp;

use cactid_units::{Joules, Seconds, SquareMeters, Watts};

/// Aggregate electrical result of evaluating a circuit block: the quantities
/// every block contributes to the array model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BlockResult {
    /// Propagation delay through the block.
    pub delay: Seconds,
    /// 10–90 %-style output transition time handed to the next stage.
    pub ramp_out: Seconds,
    /// Dynamic energy per activation.
    pub energy: Joules,
    /// Standby leakage power.
    pub leakage: Watts,
    /// Layout area.
    pub area: SquareMeters,
}

impl BlockResult {
    /// Sums two block results serially: delays add, energies add, leakage
    /// adds, areas add; the ramp is taken from `next`.
    pub fn then(&self, next: &BlockResult) -> BlockResult {
        BlockResult {
            delay: self.delay + next.delay,
            ramp_out: next.ramp_out,
            energy: self.energy + next.energy,
            leakage: self.leakage + next.leakage,
            area: self.area + next.area,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_result_then_accumulates() {
        let a = BlockResult {
            delay: Seconds::from_si(1e-10),
            ramp_out: Seconds::from_si(2e-10),
            energy: Joules::from_si(1e-12),
            leakage: Watts::from_si(1e-3),
            area: SquareMeters::from_si(1e-9),
        };
        let b = BlockResult {
            delay: Seconds::from_si(3e-10),
            ramp_out: Seconds::from_si(5e-10),
            energy: Joules::from_si(2e-12),
            leakage: Watts::from_si(2e-3),
            area: SquareMeters::from_si(2e-9),
        };
        let c = a.then(&b);
        assert!((c.delay - Seconds::from_si(4e-10)).abs() < Seconds::from_si(1e-20));
        assert_eq!(c.ramp_out, Seconds::from_si(5e-10));
        assert!((c.energy - Joules::from_si(3e-12)).abs() < Joules::from_si(1e-24));
        assert!((c.leakage - Watts::from_si(3e-3)).abs() < Watts::from_si(1e-12));
        assert!((c.area - SquareMeters::from_si(3e-9)).abs() < SquareMeters::from_si(1e-18));
    }
}
