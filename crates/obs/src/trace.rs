//! The JSONL trace sidecar and the stderr summary table.
//!
//! The sidecar is a plain-text JSONL file, one object per line:
//!
//! ```text
//! {"type":"meta","version":2,"cmd":"explore","unix_ms":1754460000000}
//! {"type":"counter","name":"core.solve.calls","value":4}
//! {"type":"histogram","name":"span.explore.solve.ns","count":4,"sum":81,"max":40,"mean":20.25,"p50":24,"p90":38,"p99":40,"buckets":[0,...]}
//! ```
//!
//! Version 2 added the `p50`/`p90`/`p99` estimated quantiles (see
//! [`crate::metrics::quantile_from_buckets`]) to every histogram line.
//!
//! Wall-clock time appears **only** in the `meta` line; counters and
//! histograms carry event counts and monotonic-clock durations, never
//! host timestamps. Metric lines are sorted by name (counters first), so
//! diffing two sidecars of the same build is meaningful.

use crate::registry::{snapshot, Snapshot};
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;
use std::time::{SystemTime, UNIX_EPOCH};

/// Escapes a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders one snapshot as the sidecar's JSONL body (no meta line).
fn render_jsonl(snap: &Snapshot) -> String {
    let mut out = String::new();
    for c in &snap.counters {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{}}}",
            escape(&c.name),
            c.value
        );
    }
    for h in &snap.histograms {
        let buckets: Vec<String> = h.buckets.iter().map(u64::to_string).collect();
        let _ = writeln!(
            out,
            "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"max\":{},\
             \"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[{}]}}",
            escape(&h.name),
            h.count,
            h.sum,
            h.max,
            h.mean(),
            h.quantile(0.50),
            h.quantile(0.90),
            h.quantile(0.99),
            buckets.join(",")
        );
    }
    out
}

/// Writes the full trace sidecar for the current process state: a `meta`
/// line stamped with the wall clock, then every registered metric.
///
/// # Errors
///
/// Propagates filesystem errors from creating or writing `path`.
pub fn write_trace(path: &Path, cmd: &str) -> std::io::Result<()> {
    let unix_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX));
    let snap = snapshot();
    let mut f = std::fs::File::create(path)?;
    writeln!(
        f,
        "{{\"type\":\"meta\",\"version\":2,\"cmd\":\"{}\",\"unix_ms\":{unix_ms}}}",
        escape(cmd)
    )?;
    f.write_all(render_jsonl(&snap).as_bytes())?;
    f.flush()
}

/// Renders the compact end-of-run summary table the CLIs print to stderr:
/// every nonzero counter, then every nonempty histogram with count, mean,
/// estimated p50/p99 and max. Durations (`*.ns` histograms) render in
/// human milliseconds.
pub fn render_summary(snap: &Snapshot) -> String {
    let mut out = String::new();
    let counters: Vec<_> = snap.counters.iter().filter(|c| c.value > 0).collect();
    let histograms: Vec<_> = snap.histograms.iter().filter(|h| h.count > 0).collect();
    let _ = writeln!(
        out,
        "cactid-obs: {} counters, {} histograms",
        counters.len(),
        histograms.len()
    );
    if !counters.is_empty() {
        let _ = writeln!(out, "  {:<44} {:>12}", "counter", "value");
        for c in counters {
            let _ = writeln!(out, "  {:<44} {:>12}", c.name, c.value);
        }
    }
    if !histograms.is_empty() {
        let _ = writeln!(
            out,
            "  {:<44} {:>8} {:>12} {:>12} {:>12} {:>12}",
            "histogram", "count", "mean", "p50", "p99", "max"
        );
        for h in histograms {
            let (mean, p50, p99, max) = if h.name.ends_with(".ns") {
                (
                    format!("{:.3} ms", h.mean() / 1e6),
                    format!("{:.3} ms", h.quantile(0.50) / 1e6),
                    format!("{:.3} ms", h.quantile(0.99) / 1e6),
                    format!("{:.3} ms", h.max as f64 / 1e6),
                )
            } else {
                (
                    format!("{:.1}", h.mean()),
                    format!("{:.1}", h.quantile(0.50)),
                    format!("{:.1}", h.quantile(0.99)),
                    h.max.to_string(),
                )
            };
            let _ = writeln!(
                out,
                "  {:<44} {:>8} {:>12} {:>12} {:>12} {:>12}",
                h.name, h.count, mean, p50, p99, max
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{counter, histogram};

    /// A minimal structural JSON check: balanced braces/brackets outside
    /// strings, no raw control characters. Not a full parser, but enough to
    /// catch unescaped quotes and torn lines in the renderer.
    fn looks_like_json_object(line: &str) -> bool {
        if !(line.starts_with('{') && line.ends_with('}')) {
            return false;
        }
        let (mut depth, mut in_str, mut escaped) = (0i32, false, false);
        for c in line.chars() {
            if in_str {
                match (escaped, c) {
                    (true, _) => escaped = false,
                    (false, '\\') => escaped = true,
                    (false, '"') => in_str = false,
                    (false, c) if (c as u32) < 0x20 => return false,
                    _ => {}
                }
            } else {
                match c {
                    '"' => in_str = true,
                    '{' | '[' => depth += 1,
                    '}' | ']' => depth -= 1,
                    _ => {}
                }
                if depth < 0 {
                    return false;
                }
            }
        }
        depth == 0 && !in_str
    }

    #[test]
    fn escape_handles_quotes_and_control_chars() {
        assert_eq!(escape("plain.name"), "plain.name");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny\t\u{1}"), "x\\ny\\t\\u0001");
    }

    #[test]
    fn trace_file_is_nonempty_valid_jsonl() {
        counter("trace.test.events").add(3);
        histogram("trace.test.wait_ns").record(1500);
        let dir = std::env::temp_dir().join(format!("obs-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        write_trace(&path, "unit-test").unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        let lines: Vec<&str> = body.lines().collect();
        assert!(lines.len() >= 3, "meta + at least two metrics");
        assert!(lines[0].contains("\"type\":\"meta\""));
        assert!(lines[0].contains("\"unix_ms\":"));
        for line in &lines {
            assert!(looks_like_json_object(line), "bad JSONL line: {line}");
        }
        assert!(body.contains("\"name\":\"trace.test.events\""));
        assert!(body.contains("\"name\":\"trace.test.wait_ns\""));
        // Version-2 histogram lines carry the estimated quantiles.
        let hist = lines
            .iter()
            .find(|l| l.contains("\"name\":\"trace.test.wait_ns\""))
            .unwrap();
        for field in ["\"p50\":", "\"p90\":", "\"p99\":"] {
            assert!(hist.contains(field), "missing {field} in {hist}");
        }
    }

    #[test]
    fn summary_renders_nonzero_metrics_only() {
        counter("trace.test.zero"); // registered, stays zero
        counter("trace.test.live").inc();
        histogram("trace.test.span.ns").record(2_000_000);
        let s = render_summary(&crate::snapshot());
        assert!(s.contains("trace.test.live"));
        assert!(!s.contains("trace.test.zero"));
        assert!(s.contains("ms"), "ns histograms render as milliseconds");
    }
}
