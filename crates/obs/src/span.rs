//! Lightweight timing spans over a thread-local span stack.
//!
//! [`span("solve")`](span) pushes `"solve"` onto the current thread's span
//! stack and starts a clock; dropping the returned [`Span`] pops the stack
//! and records the elapsed nanoseconds into the histogram
//! `span.<stack path>.ns`, where the path joins the enclosing span names
//! with dots. Nesting therefore aggregates hierarchically with zero
//! plumbing: an optimizer solve running inside the explore pool records
//! under `span.explore.solve.core.solve.ns`, while the same solve from the
//! classic CLI records under `span.core.solve.ns`.
//!
//! Spans are coarse-grained instrumentation (a whole solve, a whole engine
//! stage): the cost per span is two `Instant` reads, one `String` join and
//! one histogram record — irrelevant at that granularity, but do not wrap
//! per-event hot paths in spans; use a bare [`Counter`](crate::Counter).

use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// An RAII timing guard; see the module docs.
#[derive(Debug)]
pub struct Span {
    path: String,
    start: Instant,
}

/// Opens a span named `name` nested under the thread's current span stack.
pub fn span(name: &'static str) -> Span {
    let path = STACK.with(|s| {
        let mut s = s.borrow_mut();
        s.push(name);
        s.join(".")
    });
    Span {
        path,
        start: Instant::now(),
    }
}

impl Span {
    /// The dotted stack path this span records under (tests/diagnostics).
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        crate::registry::histogram(&format!("span.{}.ns", self.path)).record(ns);
        STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_record_dotted_paths() {
        {
            let outer = span("span-test-outer");
            assert_eq!(outer.path(), "span-test-outer");
            {
                let inner = span("span-test-inner");
                assert_eq!(inner.path(), "span-test-outer.span-test-inner");
            }
            // Popped: a new sibling nests under outer only.
            let sib = span("span-test-sib");
            assert_eq!(sib.path(), "span-test-outer.span-test-sib");
        }
        let s = crate::snapshot();
        let h = s
            .histogram("span.span-test-outer.span-test-inner.ns")
            .unwrap();
        assert!(h.count >= 1);
        assert!(s.histogram("span.span-test-outer.ns").unwrap().count >= 1);
    }

    #[test]
    fn stack_unwinds_even_in_drop_order() {
        let a = span("span-test-a");
        let b = span("span-test-b");
        assert_eq!(b.path(), "span-test-a.span-test-b");
        drop(b);
        drop(a);
        let fresh = span("span-test-fresh");
        assert_eq!(fresh.path(), "span-test-fresh", "stack fully unwound");
    }
}
