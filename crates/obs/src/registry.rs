//! The process-global metric registry.
//!
//! Metrics are identified by dotted lowercase names (`domain.noun.verb`,
//! e.g. `explore.cache.hits` — DESIGN.md §13 lists the full scheme). The
//! first request for a name allocates the metric and leaks it, so every
//! handle is `&'static` and the count path never touches the registry
//! again. Lookup takes a `Mutex`; call sites amortize it away with the
//! [`counter!`](crate::counter!)/[`histogram!`](crate::histogram!) macros.

use crate::metrics::{Counter, Histogram, BUCKETS};
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, &'static Counter>>,
    histograms: Mutex<BTreeMap<String, &'static Histogram>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// The counter named `name`, allocating it on first use.
pub fn counter(name: &str) -> &'static Counter {
    let mut map = registry()
        .counters
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(c) = map.get(name) {
        return c;
    }
    let cell: &'static Counter = Box::leak(Box::new(Counter::new()));
    map.insert(name.to_string(), cell);
    cell
}

/// The histogram named `name`, allocating it on first use.
pub fn histogram(name: &str) -> &'static Histogram {
    let mut map = registry()
        .histograms
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(h) = map.get(name) {
        return h;
    }
    let cell: &'static Histogram = Box::leak(Box::new(Histogram::new()));
    map.insert(name.to_string(), cell);
    cell
}

/// Point-in-time value of one counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Dotted metric name.
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// Point-in-time state of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Dotted metric name.
    pub name: String,
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    /// Power-of-two bucket counts (see [`crate::Histogram`]).
    pub buckets: [u64; BUCKETS],
}

impl HistogramSnapshot {
    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Estimated `q`-quantile of the snapshotted distribution (0.0 when
    /// empty). See [`crate::metrics::quantile_from_buckets`].
    pub fn quantile(&self, q: f64) -> f64 {
        crate::metrics::quantile_from_buckets(&self.buckets, self.count, q)
    }
}

/// Every registered metric at one point in time, sorted by name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// All counters.
    pub counters: Vec<CounterSnapshot>,
    /// All histograms.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// Value of the counter named `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The histogram named `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// `true` when no metric has been registered at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }
}

/// Snapshots every registered metric, sorted by name (`BTreeMap` order), so
/// trace sidecars are stable across runs with the same instrumentation.
pub fn snapshot() -> Snapshot {
    let counters = registry()
        .counters
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
        .map(|(name, c)| CounterSnapshot {
            name: name.clone(),
            value: c.get(),
        })
        .collect();
    let histograms = registry()
        .histograms
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
        .map(|(name, h)| HistogramSnapshot {
            name: name.clone(),
            count: h.count(),
            sum: h.sum(),
            max: h.max(),
            buckets: h.buckets(),
        })
        .collect();
    Snapshot {
        counters,
        histograms,
    }
}

/// Zeroes every registered metric. For benchmark harnesses that measure
/// deltas from a clean slate; racy by design if instrumented code runs
/// concurrently (counts land before or after the reset, never corrupt).
pub fn reset() {
    for c in registry()
        .counters
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .values()
    {
        c.reset();
    }
    for h in registry()
        .histograms
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .values()
    {
        h.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_resolves_to_same_cell() {
        let a = counter("registry.test.same");
        let b = counter("registry.test.same");
        assert!(std::ptr::eq(a, b));
        let ha = histogram("registry.test.same.h");
        let hb = histogram("registry.test.same.h");
        assert!(std::ptr::eq(ha, hb));
    }

    #[test]
    fn snapshot_sees_registered_values_sorted() {
        counter("registry.test.zzz").add(7);
        counter("registry.test.aaa").add(3);
        histogram("registry.test.hist").record(100);
        let s = snapshot();
        assert!(s.counter("registry.test.zzz") >= Some(7));
        assert!(s.counter("registry.test.aaa") >= Some(3));
        let names: Vec<&str> = s.counters.iter().map(|c| c.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "snapshot is name-sorted");
        let h = s.histogram("registry.test.hist").unwrap();
        assert!(h.count >= 1);
        assert!(h.mean() > 0.0);
    }

    #[test]
    fn unknown_names_are_absent_from_snapshot() {
        let s = snapshot();
        assert_eq!(s.counter("registry.test.never-registered"), None);
        assert!(s.histogram("registry.test.never-registered").is_none());
    }
}
