//! The two metric cells: [`Counter`] and [`Histogram`].
//!
//! Both are lock-free on the write path — every mutation is a single
//! `Ordering::Relaxed` atomic RMW — so instrumentation can sit inside hot
//! loops (the pool's claim loop, the solver's per-organization sweep)
//! without perturbing the throughput the PR 3 bench measures. Relaxed
//! ordering is sufficient because metrics carry no inter-thread control
//! flow: readers ([`crate::snapshot`]) tolerate slightly stale values, and
//! thread joins at the end of a run establish the happens-before edges that
//! make final snapshots exact.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Counter {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero (tests and benchmark harnesses only — production
    /// counters are monotonic).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Number of power-of-two buckets a [`Histogram`] keeps.
pub const BUCKETS: usize = 32;

/// A fixed-footprint distribution: 32 power-of-two buckets plus
/// count/sum/max.
///
/// Bucket `0` holds zero-valued samples; bucket `i ≥ 1` holds samples in
/// `[2^(i-1), 2^i)`; the last bucket absorbs everything at or above
/// `2^30`. Good enough to read off medians and tails of nanosecond-scale
/// latencies without storing samples.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// Bucket index for a sample (see [`Histogram`] for the layout).
fn bucket_of(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Histogram {
        // `[AtomicU64::new(0); 32]` needs Copy; build the array literally.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: [ZERO; BUCKETS],
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum() as f64 / n as f64
    }

    /// The per-bucket sample counts.
    pub fn buckets(&self) -> [u64; BUCKETS] {
        let mut out = [0; BUCKETS];
        for (o, b) in out.iter_mut().zip(&self.buckets) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }

    /// Resets every cell to zero (tests and benchmark harnesses only).
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_adds_and_resets() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn histogram_tracks_count_sum_max_mean() {
        let h = Histogram::new();
        for v in [1, 2, 3, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1006);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 251.5).abs() < 1e-12);
        let b = h.buckets();
        assert_eq!(b.iter().sum::<u64>(), 4);
        assert_eq!(b[1], 1, "sample 1");
        assert_eq!(b[2], 2, "samples 2 and 3");
        assert_eq!(b[10], 1, "sample 1000");
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn concurrent_increments_are_all_observed() {
        let c = Counter::new();
        let h = Histogram::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for v in 0..1000 {
                        c.inc();
                        h.record(v);
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        assert_eq!(h.count(), 8000);
        assert_eq!(h.max(), 999);
    }
}
