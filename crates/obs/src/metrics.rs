//! The two metric cells: [`Counter`] and [`Histogram`].
//!
//! Both are lock-free on the write path — every mutation is a single
//! `Ordering::Relaxed` atomic RMW — so instrumentation can sit inside hot
//! loops (the pool's claim loop, the solver's per-organization sweep)
//! without perturbing the throughput the PR 3 bench measures. Relaxed
//! ordering is sufficient because metrics carry no inter-thread control
//! flow: readers ([`crate::snapshot`]) tolerate slightly stale values, and
//! thread joins at the end of a run establish the happens-before edges that
//! make final snapshots exact.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Counter {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero (tests and benchmark harnesses only — production
    /// counters are monotonic).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Number of power-of-two buckets a [`Histogram`] keeps.
pub const BUCKETS: usize = 32;

/// A fixed-footprint distribution: 32 power-of-two buckets plus
/// count/sum/max.
///
/// Bucket `0` holds zero-valued samples; bucket `i ≥ 1` holds samples in
/// `[2^(i-1), 2^i)`; the last bucket absorbs everything at or above
/// `2^30`. Good enough to read off medians and tails of nanosecond-scale
/// latencies without storing samples.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// Bucket index for a sample (see [`Histogram`] for the layout).
fn bucket_of(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Estimates the `q`-quantile (`0.0 ≤ q ≤ 1.0`) of a distribution stored
/// as [`Histogram`] bucket counts.
///
/// The rank-`ceil(q·count)` sample's bucket is located by a cumulative
/// walk, then the value is linearly interpolated inside the bucket's
/// `[2^(i-1), 2^i)` range — so the estimate is exact to within one octave,
/// which is all a log2 histogram can promise. Bucket `0` (zero-valued
/// samples) estimates as `0.0`; the open-ended last bucket interpolates
/// toward one further doubling. An empty distribution estimates as `0.0`.
pub fn quantile_from_buckets(buckets: &[u64; BUCKETS], count: u64, q: f64) -> f64 {
    if count == 0 {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    // ceil without going through floats losing precision on huge counts.
    let rank = ((count as f64 * q).ceil() as u64).clamp(1, count);
    let mut cum = 0u64;
    for (i, &n) in buckets.iter().enumerate() {
        if n == 0 {
            continue;
        }
        if cum + n >= rank {
            if i == 0 {
                return 0.0;
            }
            let lo = (1u64 << (i - 1)) as f64;
            let hi = lo * 2.0;
            let frac = (rank - cum) as f64 / n as f64;
            return lo + frac * (hi - lo);
        }
        cum += n;
    }
    // Counts and buckets disagree (concurrent snapshot): fall back to the
    // top of the highest populated bucket.
    buckets
        .iter()
        .rposition(|&n| n > 0)
        .map_or(0.0, |i| (1u64 << i.min(63)) as f64)
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Histogram {
        // `[AtomicU64::new(0); 32]` needs Copy; build the array literally.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: [ZERO; BUCKETS],
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum() as f64 / n as f64
    }

    /// Estimated `q`-quantile of the recorded samples (0.0 when empty).
    /// See [`quantile_from_buckets`] for the estimation contract.
    pub fn quantile(&self, q: f64) -> f64 {
        quantile_from_buckets(&self.buckets(), self.count(), q)
    }

    /// The per-bucket sample counts.
    pub fn buckets(&self) -> [u64; BUCKETS] {
        let mut out = [0; BUCKETS];
        for (o, b) in out.iter_mut().zip(&self.buckets) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }

    /// Resets every cell to zero (tests and benchmark harnesses only).
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_adds_and_resets() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn histogram_tracks_count_sum_max_mean() {
        let h = Histogram::new();
        for v in [1, 2, 3, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1006);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 251.5).abs() < 1e-12);
        let b = h.buckets();
        assert_eq!(b.iter().sum::<u64>(), 4);
        assert_eq!(b[1], 1, "sample 1");
        assert_eq!(b[2], 2, "samples 2 and 3");
        assert_eq!(b[10], 1, "sample 1000");
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn quantiles_of_empty_and_zero_distributions_are_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0.0);
        for _ in 0..10 {
            h.record(0);
        }
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.quantile(0.99), 0.0);
    }

    #[test]
    fn quantiles_land_in_the_right_octave() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(1000); // bucket 10: [512, 1024)
        }
        for q in [0.5, 0.9, 0.99] {
            let v = h.quantile(q);
            assert!((512.0..=1024.0).contains(&v), "q{q} estimate {v}");
        }
    }

    #[test]
    fn quantiles_are_monotone_over_a_spread_distribution() {
        let h = Histogram::new();
        // 90 fast samples, 9 slow, 1 very slow — the classic latency shape.
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..9 {
            h.record(10_000);
        }
        h.record(1_000_000);
        let (p50, p90, p99) = (h.quantile(0.5), h.quantile(0.9), h.quantile(0.99));
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        assert!((64.0..=128.0).contains(&p50), "p50 {p50}");
        assert!((8192.0..=16384.0).contains(&p99), "p99 {p99}");
        // q is clamped; the extremes bracket the samples' octaves.
        assert!(h.quantile(-1.0) <= h.quantile(2.0));
        assert!(h.quantile(1.0) >= 524_288.0, "max-ish octave");
    }

    #[test]
    fn quantile_interpolates_within_a_bucket() {
        let mut buckets = [0u64; BUCKETS];
        buckets[11] = 4; // [1024, 2048), 4 samples
        let q25 = quantile_from_buckets(&buckets, 4, 0.25);
        let q100 = quantile_from_buckets(&buckets, 4, 1.0);
        assert_eq!(q25, 1280.0, "rank 1 of 4 → lo + 1/4 of the bucket");
        assert_eq!(q100, 2048.0, "rank 4 of 4 → bucket top");
    }

    #[test]
    fn concurrent_increments_are_all_observed() {
        let c = Counter::new();
        let h = Histogram::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for v in 0..1000 {
                        c.inc();
                        h.record(v);
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        assert_eq!(h.count(), 8000);
        assert_eq!(h.max(), 999);
    }
}
