//! # cactid-obs — hermetic observability for the CACTI-D workspace
//!
//! A zero-dependency metrics layer threaded through the solver, the
//! exploration engine and the CMP simulator so that "as fast as the
//! hardware allows" is a measurement, not a hope. Three primitives:
//!
//! * [`Counter`] — a monotonically increasing `AtomicU64` incremented with
//!   `Ordering::Relaxed`. The count path takes no lock and issues exactly
//!   one atomic add, so hot loops (pool claims, per-solve accounting) can
//!   count unconditionally.
//! * [`Histogram`] — 32 power-of-two buckets plus count/sum/max, also all
//!   relaxed atomics. Used for latency distributions (span durations,
//!   sink-mutex waits, per-worker claim balance).
//! * [`Span`] — an RAII guard that times a region and records the elapsed
//!   nanoseconds into a histogram named after the **thread-local span
//!   stack** (`span.outer.inner.ns`), so nested phases aggregate under
//!   hierarchical dotted paths without any plumbing.
//!
//! All metrics live in a process-global [`registry`](mod@crate::registry):
//! the first use of a name allocates (and leaks — metrics are `'static`)
//! the metric; every later use resolves to the same cell. Call sites cache
//! the resolved handle with the [`counter!`]/[`histogram!`] macros, which
//! hide a `OnceLock` so the registry lock is taken once per call site, not
//! per event.
//!
//! ## Determinism contract
//!
//! Metrics never feed back into model results: counters are written, not
//! read, by instrumented code, and wall-clock time appears **only** in the
//! trace sidecar's `meta` line — never in result records. The exploration
//! engine's byte-identical-JSONL guarantee therefore holds with tracing on
//! or off (ci.sh proves this with a `cmp` of the two runs).
//!
//! ## Trace sidecar
//!
//! [`write_trace`] snapshots every registered metric to a JSONL file: one
//! `meta` line (schema version, command, wall-clock `unix_ms`), then one
//! line per counter and per histogram, sorted by name. [`render_summary`]
//! renders the same snapshot as the compact end-of-run table the CLIs
//! print to stderr. See DESIGN.md §13 for the naming scheme and format.

pub mod metrics;
pub mod registry;
pub mod span;
pub mod trace;

pub use metrics::{quantile_from_buckets, Counter, Histogram};
pub use registry::{
    counter, histogram, reset, snapshot, CounterSnapshot, HistogramSnapshot, Snapshot,
};
pub use span::{span, Span};
pub use trace::{render_summary, write_trace};

/// Resolves (once per call site) and returns the [`Counter`] named by the
/// literal argument. The registry lock is taken only on the first hit of
/// each call site; afterwards this is a single pointer load.
///
/// ```
/// cactid_obs::counter!("example.events").inc();
/// assert!(cactid_obs::counter!("example.events").get() >= 1);
/// ```
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<&'static $crate::Counter> = ::std::sync::OnceLock::new();
        *CELL.get_or_init(|| $crate::counter($name))
    }};
}

/// Resolves (once per call site) and returns the [`Histogram`] named by the
/// literal argument. See [`counter!`] for the caching contract.
///
/// ```
/// cactid_obs::histogram!("example.wait_ns").record(125);
/// ```
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *CELL.get_or_init(|| $crate::histogram($name))
    }};
}

#[cfg(test)]
mod tests {
    #[test]
    fn macros_cache_the_same_cell() {
        let a = crate::counter!("lib.macro.cached");
        let b = crate::counter!("lib.macro.cached");
        assert!(std::ptr::eq(a, b));
        a.inc();
        assert!(b.get() >= 1);
    }
}
