//! The abstract prescreen: the three closed-form rejection tests of
//! [`cactid_core::array::prescreen_explain`], transcribed operation for
//! operation over interval-valued inputs.
//!
//! Each expression below mirrors the concrete source **with the same
//! association**, so the per-operation containment induction of
//! [`crate::iv`] applies: the concrete `f64` value computed by the solver
//! lies inside the abstract interval at every point of the domain. A
//! definite [`Verdict::Always`] on a rejection test is therefore a proof
//! that the concrete screen — and, because `array::evaluate` runs the
//! identical screen first, the evaluator — rejects every covered input;
//! a definite [`Verdict::Never`] proves it never does.

use crate::domain::Domain;
use crate::iv::{Iv, Verdict};
use cactid_core::array::WORDLINE_ELMORE_BOUND;
use cactid_core::PrescreenFailure;
use cactid_units::{Seconds, Volts};

/// The abstract screen's view of one `(rows, cols)` point: a three-valued
/// verdict per rejection test, plus the intervals behind them.
#[derive(Debug, Clone, Copy)]
pub struct AbsScreen {
    /// Does the subarray-rows check reject? (Exact: integer compare.)
    pub subarray_rows: Verdict,
    /// Does the wordline-Elmore check reject?
    pub wordline: Verdict,
    /// Does the DRAM sense-margin check reject? `Never` for SRAM.
    pub sense: Verdict,
    /// The abstract wordline RC enclosure.
    pub wl_rc: Iv<Seconds>,
    /// The abstract charge-sharing signal enclosure (DRAM only).
    pub sense_signal: Option<Iv<Volts>>,
}

/// The combined first-failure outcome at one point, respecting the check
/// order of the concrete screen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsOutcome {
    /// Every check passes at every point of the domain: the concrete
    /// screen returns `Ok` for every covered input.
    Pass,
    /// The named check rejects at every point of the domain and every
    /// earlier check passes at every point: the concrete screen returns
    /// exactly this failure for every covered input.
    Reject(PrescreenFailure),
    /// The domain straddles at least one check's boundary; the abstract
    /// evaluation certifies nothing at this point.
    Undecided,
}

/// Abstract wordline RC at `cols` columns, mirroring
/// `0.38 * (r_wordline_per_cell * cols) * (c_wordline_per_cell * cols)`.
pub fn abs_wordline_rc(dom: &Domain, cols: u64) -> Iv<Seconds> {
    let cols_f = Iv::exact(cols as f64);
    let r = dom.cell.r_wordline_per_cell * cols_f;
    let c = dom.cell.c_wordline_per_cell * cols_f;
    (Iv::exact(0.38_f64) * r) * c
}

/// Abstract DRAM charge-sharing signal at `rows`, mirroring
/// `vdd_cell / 2.0 * c_storage / (c_storage + c_bitline_per_cell * rows)`.
pub fn abs_sense_signal(dom: &Domain, rows: u64) -> Iv<Volts> {
    let c_bl = dom.cell.c_bitline_per_cell * Iv::exact(rows as f64);
    (dom.cell.vdd_cell / Iv::exact(2.0_f64)) * dom.cell.c_storage / (dom.cell.c_storage + c_bl)
}

/// Evaluates the three abstract rejection tests at one `(rows, cols)`
/// point of the domain.
pub fn abs_prescreen(dom: &Domain, rows: u64, cols: u64) -> AbsScreen {
    // Check 1: rows > max_rows_per_subarray. Exact integers, so the only
    // abstraction is the (normally degenerate) hull over the nodes' caps.
    let subarray_rows = if rows > dom.max_rows_hi {
        Verdict::Always
    } else if rows <= dom.max_rows_lo {
        Verdict::Never
    } else {
        Verdict::Mixed
    };

    // Check 2: wl_rc > WORDLINE_ELMORE_BOUND.
    let wl_rc = abs_wordline_rc(dom, cols);
    let wordline = wl_rc.gt(Iv::exact(WORDLINE_ELMORE_BOUND));

    // Check 3 (DRAM only): sense signal < v_sense_margin.
    let (sense, sense_signal) = if dom.is_dram() {
        let s = abs_sense_signal(dom, rows);
        (s.lt(dom.cell.v_sense_margin), Some(s))
    } else {
        (Verdict::Never, None)
    };

    AbsScreen {
        subarray_rows,
        wordline,
        sense,
        wl_rc,
        sense_signal,
    }
}

impl AbsScreen {
    /// Per-test verdicts in check order.
    #[must_use]
    pub fn in_order(&self) -> [(PrescreenFailure, Verdict); 3] {
        [
            (PrescreenFailure::SubarrayRows, self.subarray_rows),
            (PrescreenFailure::WordlineElmore, self.wordline),
            (PrescreenFailure::SenseMargin, self.sense),
        ]
    }

    /// Folds the per-test verdicts into the combined first-failure
    /// outcome. `Reject(r)` is only produced when every check before `r`
    /// is definitely passing, so the concrete failure *reason* is pinned,
    /// not just the rejection.
    #[must_use]
    pub fn outcome(&self) -> AbsOutcome {
        for (rule, verdict) in self.in_order() {
            match verdict {
                Verdict::Never => {}
                Verdict::Always => return AbsOutcome::Reject(rule),
                Verdict::Mixed => return AbsOutcome::Undecided,
            }
        }
        AbsOutcome::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cactid_core::array::prescreen_explain;
    use cactid_tech::{CellTechnology, TechNode, Technology};

    /// The heart of the soundness claim, in miniature: at every scanned
    /// point, a definite abstract outcome matches the concrete screen.
    #[test]
    fn definite_outcomes_agree_with_the_concrete_screen() {
        for &(node, tech) in &[
            (TechNode::N32, CellTechnology::Sram),
            (TechNode::N78, CellTechnology::CommDram),
            (TechNode::N32, CellTechnology::LpDram),
        ] {
            let dom = Domain::for_node(node, tech);
            let cell = Technology::cached(node).cell(tech);
            for rows in [16u64, 64, 512, 1024, 2048] {
                for cols in [32u64, 256, 1024, 4096, 8192] {
                    let abs = abs_prescreen(&dom, rows, cols).outcome();
                    let conc = prescreen_explain(&cell, rows, cols);
                    match abs {
                        AbsOutcome::Pass => assert!(
                            conc.is_ok(),
                            "{node} {tech:?} ({rows},{cols}): abstract Pass, concrete {conc:?}"
                        ),
                        AbsOutcome::Reject(r) => assert_eq!(
                            conc.err(),
                            Some(r),
                            "{node} {tech:?} ({rows},{cols}): abstract reason mismatch"
                        ),
                        AbsOutcome::Undecided => {}
                    }
                }
            }
        }
    }

    #[test]
    fn abstract_intervals_contain_the_concrete_values() {
        let dom = Domain::for_node(TechNode::N78, CellTechnology::CommDram);
        for &node in &dom.nodes.clone() {
            let cell = Technology::cached(node).cell(CellTechnology::CommDram);
            for cols in [1u64, 100, 8192] {
                let conc = 0.38
                    * (cell.r_wordline_per_cell * cols as f64)
                    * (cell.c_wordline_per_cell * cols as f64);
                assert!(
                    abs_wordline_rc(&dom, cols).contains(conc),
                    "wordline RC escapes its enclosure at {node}, cols {cols}"
                );
            }
            for rows in [1u64, 16, 512] {
                let Some(conc) = cell.dram_sense_signal(rows as usize) else {
                    unreachable!("COMM-DRAM provides a sense signal");
                };
                assert!(
                    abs_sense_signal(&dom, rows).contains(conc),
                    "sense signal escapes its enclosure at {node}, rows {rows}"
                );
            }
        }
    }

    #[test]
    fn sram_never_fires_the_sense_check() {
        let dom = Domain::for_node(TechNode::N45, CellTechnology::Sram);
        let abs = abs_prescreen(&dom, 512, 512);
        assert_eq!(abs.sense, Verdict::Never);
        assert!(abs.sense_signal.is_none());
    }
}
