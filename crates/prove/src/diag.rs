//! Prover findings as `CD02xx` diagnostics, in the same record types the
//! lint pipeline renders (`cactid_core::lint`), so `cactid prove --format
//! json` emits the exact one-object-per-line schema the `lint` and
//! `--audit` paths already publish.
//!
//! The prover does **not** depend on `cactid-analyze` (the analyzer
//! depends on nothing above `cactid-core`, and the explore engine pulls
//! both in — an edge in the other direction would cycle). The metric
//! windows it analyzes are therefore supplied by the caller as
//! [`MetricWindow`] values; the CLI passes the analyzer's shipped
//! `CD0021`/`CD0022` window constants.

use crate::cert::SpecProof;
use crate::iv::Iv;
use cactid_core::{Diagnostic, Location, PrescreenFailure, Report};
use cactid_units::Quantity;

/// `CD0201` (error): a soundness cross-check contradicted a definite
/// abstract verdict — the certificate is void and the certified bounds
/// degraded to the conservative no-op element.
pub const SOUNDNESS_CODE: &str = "CD0201";
/// `CD0202` (warning): a metric window is vacuous (empty interval) or
/// clips the whole reachable range (the rule rejects every candidate).
pub const WINDOW_CODE: &str = "CD0202";
/// `CD0203` (info): a window edge is dead — the certified enclosure
/// proves no reachable value can ever cross it, so the check never fires.
pub const DEAD_EDGE_CODE: &str = "CD0203";
/// `CD0204` (info): certified prescreen bounds were established; the
/// message carries the cutoffs the `--certified` solve path consumes.
pub const BOUNDS_CODE: &str = "CD0204";

/// Which published metric a window constrains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowMetric {
    /// `solution.access_time`, bounded below by the bitline delay.
    AccessTime,
    /// `solution.read_energy`, bounded below by the bitline energy.
    ReadEnergy,
}

impl WindowMetric {
    /// The diagnostic location field for this metric's window.
    #[must_use]
    pub fn field(self) -> &'static str {
        match self {
            WindowMetric::AccessTime => "access_time_window",
            WindowMetric::ReadEnergy => "read_energy_window",
        }
    }

    fn unit(self) -> &'static str {
        match self {
            WindowMetric::AccessTime => "s",
            WindowMetric::ReadEnergy => "J",
        }
    }
}

/// A plausibility window `[min, max]` (SI units) guarded by a lint rule:
/// the rule flags solutions whose metric falls outside it. The prover
/// analyzes where the window's edges sit relative to the certified
/// reachable enclosure.
#[derive(Debug, Clone, Copy)]
pub struct MetricWindow {
    /// The lint rule that owns the window (e.g. `CD0021`).
    pub rule_code: &'static str,
    /// The metric the window constrains.
    pub metric: WindowMetric,
    /// Lower edge, SI units.
    pub min_si: f64,
    /// Upper edge, SI units.
    pub max_si: f64,
}

fn rule_name(rule: PrescreenFailure) -> &'static str {
    match rule {
        PrescreenFailure::SubarrayRows => "subarray-rows",
        PrescreenFailure::WordlineElmore => "wordline-elmore",
        PrescreenFailure::SenseMargin => "sense-margin",
    }
}

/// Converts a spec proof (plus the caller's metric windows) into `CD02xx`
/// diagnostics.
#[must_use]
pub fn diagnostics(proof: &SpecProof, windows: &[MetricWindow]) -> Report {
    let mut report = Report::new();

    for cert in &proof.proof.certificates {
        if !cert.sound {
            let detail = cert
                .counterexample
                .as_deref()
                .unwrap_or("no counterexample recorded");
            report.push(Diagnostic::error(
                SOUNDNESS_CODE,
                Location::cell("prescreen"),
                format!(
                    "{} certificate is unsound: {detail}; certified bounds degraded to the \
                     conservative element",
                    rule_name(cert.rule)
                ),
            ));
        }
    }

    if proof.proof.sound {
        let b = &proof.proof.bounds;
        let checks: u64 = proof
            .proof
            .certificates
            .iter()
            .map(|c| c.cross_checks)
            .sum::<u64>()
            + proof.proof.combined_cross_checks;
        let reject = if b.wordline_reject_above == u64::MAX {
            "none".to_string()
        } else {
            format!(">{} cols", b.wordline_reject_above)
        };
        let sense = if proof.proof.cell_tech.is_dram() {
            format!(
                ", sense pass <={} rows, reject {}",
                b.sense_pass_upto,
                if b.sense_reject_from == u64::MAX {
                    "none".to_string()
                } else {
                    format!(">={} rows", b.sense_reject_from)
                }
            )
        } else {
            String::new()
        };
        report.push(Diagnostic::info(
            BOUNDS_CODE,
            Location::cell("prescreen"),
            format!(
                "certified prescreen bounds over {} node(s), {checks} cross-checks: wordline \
                 pass <={} cols, reject {reject}{sense}",
                proof.proof.nodes.len(),
                b.wordline_pass_upto,
            ),
        ));
    }

    for w in windows {
        push_window_diags(&mut report, proof, w);
    }
    report
}

fn push_window_diags(report: &mut Report, proof: &SpecProof, w: &MetricWindow) {
    let loc = Location::run(w.metric.field());
    if w.min_si > w.max_si {
        report.push(Diagnostic::warn(
            WINDOW_CODE,
            loc,
            format!(
                "{} window of {} is vacuous: min {:.3e} {u} > max {:.3e} {u}",
                w.metric.field(),
                w.rule_code,
                w.min_si,
                w.max_si,
                u = w.metric.unit()
            ),
        ));
        return;
    }
    // The certified enclosure bounds a *component* of the metric from
    // below (the remaining terms are non-negative), so only claims that
    // follow from a lower bound are emitted: a window the whole reachable
    // range overshoots (clipping), or a low edge no reachable value can
    // dip under (dead edge). Upper-edge deadness would need a certified
    // upper bound on the full metric, which a component cannot give.
    let lo_si = match w.metric {
        WindowMetric::AccessTime => proof.windows.t_bitline.map(enclosure_lo),
        WindowMetric::ReadEnergy => proof.windows.e_bitline.map(enclosure_lo),
    };
    let Some(lo_si) = lo_si else {
        return; // No surviving organizations — nothing reachable to analyze.
    };
    if lo_si > w.max_si {
        report.push(Diagnostic::warn(
            WINDOW_CODE,
            loc,
            format!(
                "{} window of {} clips the reachable range: certified floor {:.3e} {u} exceeds \
                 the window max {:.3e} {u}, so the rule flags every candidate",
                w.metric.field(),
                w.rule_code,
                lo_si,
                w.max_si,
                u = w.metric.unit()
            ),
        ));
    } else if lo_si >= w.min_si {
        report.push(Diagnostic::info(
            DEAD_EDGE_CODE,
            loc,
            format!(
                "low edge of {} ({}) is dead for this spec: certified floor {:.3e} {u} >= window \
                 min {:.3e} {u}, so the below-window check can never fire",
                w.metric.field(),
                w.rule_code,
                lo_si,
                w.min_si,
                u = w.metric.unit()
            ),
        ));
    }
}

fn enclosure_lo<Q: Quantity>(iv: Iv<Q>) -> f64 {
    iv.lo().si()
}

/// Human-readable certificate summary for the CLI's text mode: one line
/// per rule, then the bounds and window enclosures.
#[must_use]
pub fn text_summary(proof: &SpecProof) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let p = &proof.proof;
    let _ = writeln!(
        out,
        "prove: {:?} over {} node(s), cols 1..={}, rows cap {}",
        p.cell_tech,
        p.nodes.len(),
        p.cols_cap,
        p.rows_cap
    );
    for c in &p.certificates {
        let _ = writeln!(
            out,
            "  {:<16} {:>6} points: {} pass / {} reject / {} undecided, {} cross-checks -> {}",
            rule_name(c.rule),
            c.points,
            c.definite_pass,
            c.definite_reject,
            c.undecided,
            c.cross_checks,
            if c.sound { "sound" } else { "UNSOUND" }
        );
    }
    let _ = writeln!(
        out,
        "  combined first-failure agreement: {} point checks",
        p.combined_cross_checks
    );
    if p.sound {
        let b = &p.bounds;
        let _ = writeln!(
            out,
            "  certified bounds: wordline pass <={} / reject >{}, sense pass <={} / reject >={}",
            b.wordline_pass_upto,
            if b.wordline_reject_above == u64::MAX {
                "inf".to_string()
            } else {
                b.wordline_reject_above.to_string()
            },
            b.sense_pass_upto,
            if b.sense_reject_from == u64::MAX {
                "inf".to_string()
            } else {
                b.sense_reject_from.to_string()
            }
        );
    }
    let w = &proof.windows;
    let _ = writeln!(
        out,
        "  enumeration: {} orgs, {} not definitely rejected",
        w.orgs, w.surviving
    );
    if let Some(t) = w.t_bitline {
        let _ = writeln!(out, "  t_bitline enclosure: {t}");
    }
    if let Some(e) = w.e_bitline {
        let _ = writeln!(out, "  e_bitline enclosure: {e}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::certify_spec;
    use cactid_core::{AccessMode, MemoryKind, MemorySpec, Severity};
    use cactid_tech::{CellTechnology, TechNode};

    fn l2_spec() -> MemorySpec {
        MemorySpec::builder()
            .capacity_bytes(1 << 21)
            .block_bytes(64)
            .associativity(8)
            .banks(1)
            .cell_tech(CellTechnology::Sram)
            .node(TechNode::N32)
            .kind(MemoryKind::Cache {
                access_mode: AccessMode::Normal,
            })
            .build()
            .unwrap()
    }

    fn shipped_windows() -> [MetricWindow; 2] {
        [
            MetricWindow {
                rule_code: "CD0021",
                metric: WindowMetric::AccessTime,
                min_si: 1.0e-12,
                max_si: 1.0e-3,
            },
            MetricWindow {
                rule_code: "CD0022",
                metric: WindowMetric::ReadEnergy,
                min_si: 1.0e-15,
                max_si: 1.0e-6,
            },
        ]
    }

    #[test]
    fn sound_proof_emits_bounds_info_and_no_errors() {
        let proof = certify_spec(&l2_spec());
        let report = diagnostics(&proof, &shipped_windows());
        assert!(report.is_clean(), "{report:?}");
        assert!(report.iter().any(|d| d.code == BOUNDS_CODE));
        assert!(!report.iter().any(|d| d.code == SOUNDNESS_CODE));
    }

    #[test]
    fn wide_shipped_windows_have_dead_low_edges() {
        // The shipped plausibility windows start at 1 ps / 1 fJ — far
        // below anything a real organization can produce, which is
        // exactly what the dead-edge analysis should certify.
        let proof = certify_spec(&l2_spec());
        let report = diagnostics(&proof, &shipped_windows());
        let dead: Vec<_> = report.iter().filter(|d| d.code == DEAD_EDGE_CODE).collect();
        assert_eq!(dead.len(), 2, "{report:?}");
        assert!(dead.iter().all(|d| d.severity == Severity::Info));
    }

    #[test]
    fn vacuous_and_clipping_windows_warn() {
        let proof = certify_spec(&l2_spec());
        let vacuous = MetricWindow {
            rule_code: "CDTEST",
            metric: WindowMetric::AccessTime,
            min_si: 1.0,
            max_si: 0.5,
        };
        let clipping = MetricWindow {
            rule_code: "CDTEST",
            metric: WindowMetric::ReadEnergy,
            min_si: 0.0,
            max_si: 1.0e-30,
        };
        let report = diagnostics(&proof, &[vacuous, clipping]);
        let warns: Vec<_> = report.iter().filter(|d| d.code == WINDOW_CODE).collect();
        assert_eq!(warns.len(), 2, "{report:?}");
        assert!(warns[0].message.contains("vacuous"));
        assert!(warns[1].message.contains("clips"));
    }

    #[test]
    fn text_summary_names_every_rule() {
        let s = text_summary(&certify_spec(&l2_spec()));
        for name in ["subarray-rows", "wordline-elmore", "sense-margin"] {
            assert!(s.contains(name), "{s}");
        }
        assert!(s.contains("certified bounds"));
    }
}
