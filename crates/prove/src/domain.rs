//! Abstract input domains for the prover: interval-valued cell and
//! peripheral parameters derived from a tech node's parameter ranges, plus
//! the organization box the sweep enumeration can reach.
//!
//! A domain is built as the **hull of concrete parameter tables**: for
//! each node in the covered set the exact Table-1 `CellParams` (and the
//! peripheral device row) are sampled, and each field keeps its min/max.
//! No widening is applied to the hull endpoints — they *are* concrete
//! values, and containment is closed at the endpoints. An interpolated
//! half-node (78 nm) additionally pulls in its bracketing ITRS anchors:
//! both the linear and the log-space blends `cactid-tech` uses stay inside
//! the endpoint hull for every interpolation fraction in `[0, 1]`, so the
//! certificate covers the whole family between the anchors, not just the
//! sampled node.
//!
//! The organization axes come from [`cactid_core::org::SWEEP_BOUNDS`]: the
//! enumeration never emits more than `max_cols` columns, and the sense
//! check is only reachable for `rows ≤ max_rows_per_subarray` (the
//! subarray-rows check fires first), which caps the row scan.

use crate::iv::Iv;
use cactid_core::org;
use cactid_tech::{CellTechnology, TechNode, Technology};
use cactid_units::{Amperes, Farads, FaradsPerMeter, Meters, Ohms, Volts};

/// Interval-valued cell parameters: the hull of the concrete
/// [`cactid_tech::CellParams`] fields across the domain's nodes.
#[derive(Debug, Clone, Copy)]
pub struct CellIv {
    /// Cell supply voltage.
    pub vdd_cell: Iv<Volts>,
    /// Bitline capacitance contributed per cell.
    pub c_bitline_per_cell: Iv<Farads>,
    /// Wordline capacitance contributed per cell.
    pub c_wordline_per_cell: Iv<Farads>,
    /// Wordline resistance contributed per cell.
    pub r_wordline_per_cell: Iv<Ohms>,
    /// Bitline resistance contributed per cell.
    pub r_bitline_per_cell: Iv<Ohms>,
    /// DRAM storage capacitance.
    pub c_storage: Iv<Farads>,
    /// Minimum sense-amp input signal.
    pub v_sense_margin: Iv<Volts>,
    /// SRAM cell read current.
    pub i_cell_read: Iv<Amperes>,
    /// DRAM access-transistor on-resistance.
    pub r_access_on: Iv<Ohms>,
    /// Worst-case timing derate.
    pub timing_derate: Iv<f64>,
}

/// The abstract input domain of one prover run: one cell technology, a set
/// of concrete nodes whose parameter hull the intervals cover, and the
/// reachable organization box.
#[derive(Debug, Clone)]
pub struct Domain {
    /// The cell technology the domain describes.
    pub cell_tech: CellTechnology,
    /// The concrete nodes sampled into the hull (cross-check anchors).
    pub nodes: Vec<TechNode>,
    /// Interval-valued cell parameters.
    pub cell: CellIv,
    /// Peripheral drain capacitance per width (enters the bitline load).
    pub periph_c_drain: Iv<FaradsPerMeter>,
    /// Peripheral minimum transistor width.
    pub periph_min_width: Iv<Meters>,
    /// Smallest `max_rows_per_subarray` across the nodes.
    pub max_rows_lo: u64,
    /// Largest `max_rows_per_subarray` across the nodes.
    pub max_rows_hi: u64,
    /// Column scan cap: the enumeration never exceeds it.
    pub cols_cap: u64,
    /// Row scan cap for the sense check (`= max_rows_hi`; taller subarrays
    /// are rejected by the subarray-rows check before the sense check
    /// runs).
    pub rows_cap: u64,
}

/// The node family a single node's certificate must cover: the node
/// itself, plus — for an interpolated half-node — the bracketing ITRS
/// anchors whose hull contains every blend between them.
fn family(node: TechNode) -> Vec<TechNode> {
    if TechNode::ALL.contains(&node) {
        return vec![node];
    }
    let f = node.feature_nm();
    let mut out = vec![node];
    // `ALL` is ordered by descending feature size, so the last anchor
    // above `f` and the first below it are the bracketing pair.
    if let Some(&hi) = TechNode::ALL.iter().rfind(|n| n.feature_nm() > f) {
        out.push(hi);
    }
    if let Some(&lo) = TechNode::ALL.iter().find(|n| n.feature_nm() < f) {
        out.push(lo);
    }
    out
}

impl Domain {
    /// The hull domain over an explicit node set — the whole-grid form,
    /// covering every listed node (and everything an interpolation blends
    /// between listed anchors).
    ///
    /// # Panics
    ///
    /// Panics when `nodes` is empty: a domain must cover something.
    #[must_use]
    pub fn hull(nodes: &[TechNode], cell_tech: CellTechnology) -> Self {
        assert!(!nodes.is_empty(), "a prover domain needs at least one node");
        let mut cell_iv: Option<CellIv> = None;
        let mut c_drain: Option<Iv<FaradsPerMeter>> = None;
        let mut min_width: Option<Iv<Meters>> = None;
        let mut max_rows_lo = u64::MAX;
        let mut max_rows_hi = 0u64;
        for &node in nodes {
            let tech = Technology::cached(node);
            let cell = tech.cell(cell_tech);
            let periph = tech.peripheral_device(cell_tech);
            let point = CellIv {
                vdd_cell: Iv::exact(cell.vdd_cell),
                c_bitline_per_cell: Iv::exact(cell.c_bitline_per_cell),
                c_wordline_per_cell: Iv::exact(cell.c_wordline_per_cell),
                r_wordline_per_cell: Iv::exact(cell.r_wordline_per_cell),
                r_bitline_per_cell: Iv::exact(cell.r_bitline_per_cell),
                c_storage: Iv::exact(cell.c_storage),
                v_sense_margin: Iv::exact(cell.v_sense_margin),
                i_cell_read: Iv::exact(cell.i_cell_read),
                r_access_on: Iv::exact(cell.r_access_on),
                timing_derate: Iv::exact(cell.timing_derate),
            };
            cell_iv = Some(match cell_iv {
                None => point,
                Some(acc) => CellIv {
                    vdd_cell: acc.vdd_cell.hull(point.vdd_cell),
                    c_bitline_per_cell: acc.c_bitline_per_cell.hull(point.c_bitline_per_cell),
                    c_wordline_per_cell: acc.c_wordline_per_cell.hull(point.c_wordline_per_cell),
                    r_wordline_per_cell: acc.r_wordline_per_cell.hull(point.r_wordline_per_cell),
                    r_bitline_per_cell: acc.r_bitline_per_cell.hull(point.r_bitline_per_cell),
                    c_storage: acc.c_storage.hull(point.c_storage),
                    v_sense_margin: acc.v_sense_margin.hull(point.v_sense_margin),
                    i_cell_read: acc.i_cell_read.hull(point.i_cell_read),
                    r_access_on: acc.r_access_on.hull(point.r_access_on),
                    timing_derate: acc.timing_derate.hull(point.timing_derate),
                },
            });
            let d = Iv::exact(periph.c_drain);
            c_drain = Some(c_drain.map_or(d, |acc| acc.hull(d)));
            let w = Iv::exact(periph.min_width);
            min_width = Some(min_width.map_or(w, |acc| acc.hull(w)));
            max_rows_lo = max_rows_lo.min(cell.max_rows_per_subarray as u64);
            max_rows_hi = max_rows_hi.max(cell.max_rows_per_subarray as u64);
        }
        let Some(cell) = cell_iv else {
            unreachable!("nodes is non-empty");
        };
        let Some(periph_c_drain) = c_drain else {
            unreachable!("nodes is non-empty");
        };
        let Some(periph_min_width) = min_width else {
            unreachable!("nodes is non-empty");
        };
        Self {
            cell_tech,
            nodes: nodes.to_vec(),
            cell,
            periph_c_drain,
            periph_min_width,
            max_rows_lo,
            max_rows_hi,
            cols_cap: org::SWEEP_BOUNDS.max_cols,
            rows_cap: max_rows_hi,
        }
    }

    /// The domain a single node induces: the node itself for an ITRS
    /// anchor; for an interpolated half-node, the hull of the node and its
    /// bracketing anchors (sound for every blend between them).
    #[must_use]
    pub fn for_node(node: TechNode, cell_tech: CellTechnology) -> Self {
        Self::hull(&family(node), cell_tech)
    }

    /// `true` when the domain is a DRAM technology (the sense-margin check
    /// exists only there).
    #[must_use]
    pub fn is_dram(&self) -> bool {
        self.cell_tech.is_dram()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchor_node_domain_is_a_point() {
        let d = Domain::for_node(TechNode::N32, CellTechnology::Sram);
        assert_eq!(d.nodes, vec![TechNode::N32]);
        assert_eq!(d.cell.vdd_cell.lo(), d.cell.vdd_cell.hi());
        assert_eq!(d.max_rows_lo, d.max_rows_hi);
        assert_eq!(d.rows_cap, 1024, "SRAM max_rows_per_subarray");
        assert_eq!(d.cols_cap, org::SWEEP_BOUNDS.max_cols);
    }

    #[test]
    fn half_node_domain_pulls_in_its_anchors() {
        let d = Domain::for_node(TechNode::N78, CellTechnology::CommDram);
        assert_eq!(d.nodes, vec![TechNode::N78, TechNode::N90, TechNode::N65]);
        // The interpolated value lies strictly inside the anchor hull.
        let n78 = Technology::cached(TechNode::N78).cell(CellTechnology::CommDram);
        assert!(d.cell.c_bitline_per_cell.contains(n78.c_bitline_per_cell));
        assert!(
            d.cell.c_bitline_per_cell.lo() < d.cell.c_bitline_per_cell.hi(),
            "hull over distinct anchors is not a point"
        );
    }

    #[test]
    fn hull_contains_every_listed_node() {
        let nodes = [TechNode::N90, TechNode::N45];
        let d = Domain::hull(&nodes, CellTechnology::LpDram);
        for &n in &nodes {
            let cell = Technology::cached(n).cell(CellTechnology::LpDram);
            assert!(d.cell.vdd_cell.contains(cell.vdd_cell));
            assert!(d.cell.c_storage.contains(cell.c_storage));
            assert!(d.cell.v_sense_margin.contains(cell.v_sense_margin));
        }
    }
}
