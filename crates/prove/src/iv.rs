//! Outward-rounded dimensional intervals.
//!
//! [`Iv<Q>`] is a closed interval `[lo, hi]` of one `cactid-units`
//! quantity. Arithmetic evaluates on the raw SI corner values and then
//! rounds **outward** by one ulp per operation, while the `where`-clauses
//! on the generic impls (`A: Mul<B, Output = C>`) re-use the `dim_mul!`
//! legality table — an interval product that mixes dimensions illegally is
//! a compile error, exactly as it is for the point quantities.
//!
//! ## Why one ulp per operation is enough
//!
//! The containment invariant the prover relies on: if every operand
//! interval contains the corresponding concrete `f64` value, the result
//! interval contains the concrete result of the mirrored operation. Each
//! concrete IEEE-754 operation rounds its exact real result to nearest,
//! an error of at most ½ ulp; the corner arithmetic below commits at most
//! the same rounding, so stepping each bound one full ulp outward strictly
//! covers both. Induction over the (identically associated) expression
//! tree extends this to whole closed forms. A NaN corner (`0·∞`, `∞−∞`)
//! widens to the whole line, which is trivially sound.

use cactid_units::Quantity;
use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

/// A closed interval `[lo, hi]` of quantity `Q`, outward-rounded so that
/// every mirrored concrete computation stays contained. See the module
/// docs for the soundness argument.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Iv<Q> {
    lo: Q,
    hi: Q,
}

/// Collapses raw SI corner values into an outward-rounded `[lo, hi]` pair.
fn outward(corners: &[f64]) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in corners {
        if v.is_nan() {
            return (f64::NEG_INFINITY, f64::INFINITY);
        }
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (lo.next_down(), hi.next_up())
}

impl<Q: Quantity> Iv<Q> {
    /// The degenerate interval `[q, q]` — an exactly known input. Domain
    /// endpoints enter this way: the hull of concrete parameter values
    /// needs no widening because containment is closed at the endpoints.
    pub fn exact(q: Q) -> Self {
        Self { lo: q, hi: q }
    }

    /// The interval `[lo, hi]`. Swapped bounds are debug-asserted, not
    /// reordered — a reversed span is a caller bug, not an empty interval.
    pub fn span(lo: Q, hi: Q) -> Self {
        debug_assert!(lo.si() <= hi.si(), "reversed interval bounds");
        Self { lo, hi }
    }

    /// Lower bound.
    pub fn lo(self) -> Q {
        self.lo
    }

    /// Upper bound.
    pub fn hi(self) -> Q {
        self.hi
    }

    /// The smallest interval containing both `self` and `other`.
    pub fn hull(self, other: Self) -> Self {
        let lo = if self.lo.si() <= other.lo.si() {
            self.lo
        } else {
            other.lo
        };
        let hi = if self.hi.si() >= other.hi.si() {
            self.hi
        } else {
            other.hi
        };
        Self { lo, hi }
    }

    /// `true` when `q` lies inside the closed interval.
    pub fn contains(self, q: Q) -> bool {
        self.lo.si() <= q.si() && q.si() <= self.hi.si()
    }

    /// Reinterprets the interval as another quantity without touching the
    /// SI values — the interval counterpart of the concrete code's
    /// `value()`/`from_si()` escape hatches (e.g. the DRAM effective
    /// series capacitance, whose intermediate F²/F has no named unit).
    /// Exact: no rounding, so containment is preserved verbatim.
    pub fn cast<R: Quantity>(self) -> Iv<R> {
        Iv {
            lo: R::of_si(self.lo.si()),
            hi: R::of_si(self.hi.si()),
        }
    }

    /// Is `x > t` for every/no pair `x ∈ self`, `t ∈ threshold`?
    pub fn gt(self, threshold: Self) -> Verdict {
        if self.lo.si() > threshold.hi.si() {
            Verdict::Always
        } else if self.hi.si() <= threshold.lo.si() {
            Verdict::Never
        } else {
            Verdict::Mixed
        }
    }

    /// Is `x < t` for every/no pair `x ∈ self`, `t ∈ threshold`?
    pub fn lt(self, threshold: Self) -> Verdict {
        if self.hi.si() < threshold.lo.si() {
            Verdict::Always
        } else if self.lo.si() >= threshold.hi.si() {
            Verdict::Never
        } else {
            Verdict::Mixed
        }
    }

    fn from_raw_outward(lo: f64, hi: f64) -> Self {
        let (lo, hi) = outward(&[lo, hi]);
        Self {
            lo: Q::of_si(lo),
            hi: Q::of_si(hi),
        }
    }
}

/// Three-valued truth of a predicate over every point of an interval
/// domain: it holds for **all** points, for **none**, or the domain
/// straddles the boundary and the abstract evaluation cannot decide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The predicate holds at every point of the domain.
    Always,
    /// The predicate holds at no point of the domain.
    Never,
    /// Undecided: the domain straddles the predicate's boundary.
    Mixed,
}

impl<Q: Quantity + Add<Output = Q>> Add for Iv<Q> {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self::from_raw_outward(self.lo.si() + rhs.lo.si(), self.hi.si() + rhs.hi.si())
    }
}

impl<Q: Quantity + Sub<Output = Q>> Sub for Iv<Q> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self::from_raw_outward(self.lo.si() - rhs.hi.si(), self.hi.si() - rhs.lo.si())
    }
}

impl<A, B, C> Mul<Iv<B>> for Iv<A>
where
    A: Quantity + Mul<B, Output = C>,
    B: Quantity,
    C: Quantity,
{
    type Output = Iv<C>;
    fn mul(self, rhs: Iv<B>) -> Iv<C> {
        let (lo, hi) = outward(&[
            self.lo.si() * rhs.lo.si(),
            self.lo.si() * rhs.hi.si(),
            self.hi.si() * rhs.lo.si(),
            self.hi.si() * rhs.hi.si(),
        ]);
        Iv {
            lo: C::of_si(lo),
            hi: C::of_si(hi),
        }
    }
}

impl<A, B, C> Div<Iv<B>> for Iv<A>
where
    A: Quantity + Div<B, Output = C>,
    B: Quantity,
    C: Quantity,
{
    type Output = Iv<C>;
    fn div(self, rhs: Iv<B>) -> Iv<C> {
        // A divisor interval containing zero widens to the whole line —
        // sound, and the prover's domains never produce one (all divisors
        // are strictly positive physical quantities).
        let (lo, hi) = if rhs.lo.si() <= 0.0 && rhs.hi.si() >= 0.0 {
            (f64::NEG_INFINITY, f64::INFINITY)
        } else {
            outward(&[
                self.lo.si() / rhs.lo.si(),
                self.lo.si() / rhs.hi.si(),
                self.hi.si() / rhs.lo.si(),
                self.hi.si() / rhs.hi.si(),
            ])
        };
        Iv {
            lo: C::of_si(lo),
            hi: C::of_si(hi),
        }
    }
}

impl<Q: Quantity + fmt::Display> fmt::Display for Iv<Q> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cactid_units::{Farads, Ohms, Seconds, Volts};

    #[test]
    fn dimensional_products_follow_the_legality_table() {
        let r = Iv::exact(Ohms::from_si(1.0e3));
        let c = Iv::span(Farads::ff(50.0), Farads::ff(60.0));
        let t: Iv<Seconds> = r * c;
        assert!(t.contains(Ohms::from_si(1.0e3) * Farads::ff(55.0)));
        // Scalar intervals compose on either side.
        let scaled: Iv<Seconds> = Iv::exact(0.38_f64) * t;
        assert!(scaled.lo() < t.lo());
    }

    #[test]
    fn every_op_contains_the_mirrored_concrete_result() {
        let a = 3.7e-13_f64;
        let b = 9.1e2_f64;
        let ia = Iv::exact(Farads::from_si(a));
        let ib = Iv::exact(Ohms::from_si(b));
        let t = ib * ia;
        assert!(t.contains(Ohms::from_si(b) * Farads::from_si(a)));
        let s = Iv::exact(Seconds::from_si(a)) + Iv::exact(Seconds::from_si(b));
        assert!(s.contains(Seconds::from_si(a + b)));
        let d = Iv::exact(Seconds::from_si(a)) - Iv::exact(Seconds::from_si(b));
        assert!(d.contains(Seconds::from_si(a - b)));
        let q: Iv<f64> = Iv::exact(Seconds::from_si(a)) / Iv::exact(Seconds::from_si(b));
        assert!(q.contains(a / b));
    }

    #[test]
    fn outward_rounding_strictly_widens() {
        let x = Iv::exact(Volts::from_si(0.1));
        let y = x * Iv::exact(2.0_f64);
        assert!(y.lo() < Volts::from_si(0.2) && Volts::from_si(0.2) < y.hi());
    }

    #[test]
    fn division_by_a_zero_straddling_interval_is_whole_line() {
        let num = Iv::exact(Seconds::from_si(1.0));
        let den = Iv::span(-1.0_f64, 1.0_f64);
        let q = num / den;
        assert_eq!(q.lo(), Seconds::from_si(f64::NEG_INFINITY));
        assert_eq!(q.hi(), Seconds::from_si(f64::INFINITY));
    }

    #[test]
    fn verdicts_are_three_valued() {
        let x = Iv::span(Seconds::ns(1.0), Seconds::ns(2.0));
        assert_eq!(x.gt(Iv::exact(Seconds::ns(0.5))), Verdict::Always);
        assert_eq!(x.gt(Iv::exact(Seconds::ns(3.0))), Verdict::Never);
        assert_eq!(x.gt(Iv::exact(Seconds::ns(1.5))), Verdict::Mixed);
        assert_eq!(x.lt(Iv::exact(Seconds::ns(3.0))), Verdict::Always);
        assert_eq!(x.lt(Iv::exact(Seconds::ns(0.5))), Verdict::Never);
        // Interval thresholds: Always/Never quantify over both operands.
        let t = Iv::span(Seconds::ns(1.5), Seconds::ns(1.8));
        assert_eq!(x.gt(t), Verdict::Mixed);
        assert_eq!(Iv::exact(Seconds::ns(2.0)).gt(t), Verdict::Always);
    }

    #[test]
    fn hull_and_cast_are_exact() {
        let a = Iv::exact(Farads::ff(10.0));
        let b = Iv::exact(Farads::ff(30.0));
        let h = a.hull(b);
        assert_eq!(h.lo(), Farads::ff(10.0));
        assert_eq!(h.hi(), Farads::ff(30.0));
        let raw: Iv<f64> = h.cast();
        assert_eq!(raw.lo(), Farads::ff(10.0).value());
        assert_eq!(raw.cast::<Farads>(), h);
    }
}
