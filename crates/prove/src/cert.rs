//! Certificates: exhaustive interval scans over the reachable organization
//! box, cross-checked against the concrete screen at every sampled node.
//!
//! A [`Certificate`] is *evidence*, not trust: every definite abstract
//! verdict the scan produces is compared against the concrete closed form
//! at every node of the domain, so a transcription bug in the abstract
//! evaluator surfaces as an unsound certificate (and the derived
//! [`CertifiedBounds`] degrade to the conservative no-op element) instead
//! of a wrong cutoff reaching the solver.
//!
//! The scan is genuinely exhaustive over the reachable domain: the
//! enumeration never emits more than `SWEEP_BOUNDS.max_cols` columns
//! (every column count up to the cap is scanned, not just powers of two),
//! and the sense check is only reachable for `rows ≤
//! max_rows_per_subarray` because the subarray-rows check fires first —
//! so scanning power-of-two rows up to that cap, plus the first counts
//! past it, covers every input the check can see.

use crate::domain::Domain;
use crate::iv::{Iv, Verdict};
use crate::screen::{abs_prescreen, abs_sense_signal, abs_wordline_rc, AbsOutcome};
use cactid_core::array::{cal, prescreen_explain, CertifiedBounds, WORDLINE_ELMORE_BOUND};
use cactid_core::{org, MemorySpec, PrescreenFailure};
use cactid_tech::{CellParams, CellTechnology, TechNode, Technology};
use cactid_units::{Joules, Seconds};

/// The soundness certificate of one prune rule over one domain.
#[derive(Debug, Clone)]
pub struct Certificate {
    /// Which rule the certificate speaks for.
    pub rule: PrescreenFailure,
    /// Abstract points evaluated along the rule's input axis.
    pub points: u64,
    /// Points where the rule definitely passes over the whole domain.
    pub definite_pass: u64,
    /// Points where the rule definitely rejects over the whole domain.
    pub definite_reject: u64,
    /// Points the abstract domain cannot decide (boundary zone).
    pub undecided: u64,
    /// Concrete evaluations compared against the abstract verdicts.
    pub cross_checks: u64,
    /// `true` when no cross-check contradicted a definite verdict.
    pub sound: bool,
    /// The first contradiction found, if any.
    pub counterexample: Option<String>,
}

impl Certificate {
    fn new(rule: PrescreenFailure) -> Self {
        Self {
            rule,
            points: 0,
            definite_pass: 0,
            definite_reject: 0,
            undecided: 0,
            cross_checks: 0,
            sound: true,
            counterexample: None,
        }
    }

    fn record(&mut self, v: Verdict) {
        self.points += 1;
        match v {
            Verdict::Never => self.definite_pass += 1,
            Verdict::Always => self.definite_reject += 1,
            Verdict::Mixed => self.undecided += 1,
        }
    }

    fn check(&mut self, v: Verdict, concrete_rejects: bool, what: impl Fn() -> String) {
        self.cross_checks += 1;
        let contradiction = match v {
            Verdict::Always => !concrete_rejects,
            Verdict::Never => concrete_rejects,
            Verdict::Mixed => false,
        };
        if contradiction && self.sound {
            self.sound = false;
            self.counterexample = Some(what());
        }
    }
}

/// A whole-domain proof: per-rule certificates, the combined first-failure
/// cross-check, and the [`CertifiedBounds`] the scan supports.
#[derive(Debug, Clone)]
pub struct Proof {
    /// The cell technology the proof covers.
    pub cell_tech: CellTechnology,
    /// The concrete nodes cross-checked (the hull anchors).
    pub nodes: Vec<TechNode>,
    /// Column scan cap (every `1..=cols_cap` scanned).
    pub cols_cap: u64,
    /// Row scan cap for the sense check.
    pub rows_cap: u64,
    /// Per-rule certificates in check order.
    pub certificates: [Certificate; 3],
    /// Full `(rows, cols, node)` combined-outcome comparisons performed.
    pub combined_cross_checks: u64,
    /// The certified cutoffs the scan supports — conservative when any
    /// certificate is unsound.
    pub bounds: CertifiedBounds,
    /// `true` when every certificate (and the combined check) is sound.
    pub sound: bool,
}

impl Proof {
    /// The certificate for `rule`.
    #[must_use]
    pub fn certificate(&self, rule: PrescreenFailure) -> &Certificate {
        let idx = match rule {
            PrescreenFailure::SubarrayRows => 0,
            PrescreenFailure::WordlineElmore => 1,
            PrescreenFailure::SenseMargin => 2,
        };
        &self.certificates[idx]
    }
}

/// Power-of-two row counts up to the sense cap, plus the first counts past
/// the subarray limit (where the subarray-rows check must fire).
fn row_scan_values(dom: &Domain) -> Vec<u64> {
    let mut out: Vec<u64> = Vec::new();
    let mut r = 1u64;
    while r <= dom.rows_cap {
        out.push(r);
        r *= 2;
    }
    out.push(dom.max_rows_hi + 1);
    out.push(dom.max_rows_hi * 2);
    out
}

/// Runs the full certification scan over a domain.
#[must_use]
pub fn certify(dom: &Domain) -> Proof {
    let cells: Vec<(TechNode, CellParams)> = dom
        .nodes
        .iter()
        .map(|&n| (n, Technology::cached(n).cell(dom.cell_tech)))
        .collect();
    let mut sub_cert = Certificate::new(PrescreenFailure::SubarrayRows);
    let mut wl_cert = Certificate::new(PrescreenFailure::WordlineElmore);
    let mut sm_cert = Certificate::new(PrescreenFailure::SenseMargin);

    // --- Wordline axis: every column count the enumeration can emit. ---
    let mut wl_verdicts: Vec<Verdict> = Vec::with_capacity(dom.cols_cap as usize);
    for cols in 1..=dom.cols_cap {
        let rc = abs_wordline_rc(dom, cols);
        let v = rc.gt(Iv::exact(WORDLINE_ELMORE_BOUND));
        wl_cert.record(v);
        wl_verdicts.push(v);
        for (node, cell) in &cells {
            let conc = 0.38
                * (cell.r_wordline_per_cell * cols as f64)
                * (cell.c_wordline_per_cell * cols as f64);
            let rejects = conc > WORDLINE_ELMORE_BOUND;
            wl_cert.check(v, rejects, || {
                format!("wordline at cols {cols}, {node}: abstract {v:?}, concrete {conc}")
            });
            // Containment is the inductive invariant itself — verify it.
            if !rc.contains(conc) && wl_cert.sound {
                wl_cert.sound = false;
                wl_cert.counterexample = Some(format!(
                    "wordline RC {conc} escapes {rc} at cols {cols}, {node}"
                ));
            }
        }
    }

    // --- Row axes: subarray cap (exact) and DRAM sense margin. ---
    let rows_vals = row_scan_values(dom);
    let mut row_verdicts: Vec<(u64, Verdict, Verdict)> = Vec::with_capacity(rows_vals.len());
    for &rows in &rows_vals {
        let abs = abs_prescreen(dom, rows, 1);
        sub_cert.record(abs.subarray_rows);
        for (node, cell) in &cells {
            let rejects = rows > cell.max_rows_per_subarray as u64;
            sub_cert.check(abs.subarray_rows, rejects, || {
                format!("subarray-rows at rows {rows}, {node}")
            });
        }
        if dom.is_dram() && rows <= dom.rows_cap {
            let sig = abs_sense_signal(dom, rows);
            sm_cert.record(abs.sense);
            for (node, cell) in &cells {
                let Some(conc) = cell.dram_sense_signal(rows as usize) else {
                    unreachable!("DRAM cell provides a sense signal");
                };
                sm_cert.check(abs.sense, conc < cell.v_sense_margin, || {
                    format!(
                        "sense at rows {rows}, {node}: abstract {:?}, signal {conc}",
                        abs.sense
                    )
                });
                if !sig.contains(conc) && sm_cert.sound {
                    sm_cert.sound = false;
                    sm_cert.counterexample = Some(format!(
                        "sense signal {conc} escapes {sig} at rows {rows}, {node}"
                    ));
                }
            }
        }
        row_verdicts.push((rows, abs.subarray_rows, abs.sense));
    }
    if !dom.is_dram() {
        // The sense check structurally cannot fire: certify it vacuously
        // with a single definite-pass point so the report stays uniform.
        sm_cert.record(Verdict::Never);
    }

    // --- Combined first-failure cross-check over the product grid. ---
    // The abstract outcome folds the precomputed per-axis verdicts in
    // check order; the concrete side is the production `prescreen_explain`
    // itself, so this directly certifies "abstract Reject(r) ⇒ the solver
    // rejects with exactly r" at every sampled point.
    let mut combined_cross_checks = 0u64;
    let mut combined_failure: Option<String> = None;
    for (ci, &wl_v) in wl_verdicts.iter().enumerate() {
        let cols = ci as u64 + 1;
        for &(rows, sub_v, sense_v) in &row_verdicts {
            let outcome = fold_outcome(sub_v, wl_v, sense_v);
            if outcome == AbsOutcome::Undecided {
                continue;
            }
            for (node, cell) in &cells {
                combined_cross_checks += 1;
                let conc = prescreen_explain(cell, rows, cols);
                let ok = match outcome {
                    AbsOutcome::Pass => conc.is_ok(),
                    AbsOutcome::Reject(r) => conc.err() == Some(r),
                    AbsOutcome::Undecided => true,
                };
                if !ok && combined_failure.is_none() {
                    combined_failure = Some(format!(
                        "combined screen at ({rows},{cols}), {node}: abstract {outcome:?}, \
                         concrete {conc:?}"
                    ));
                }
            }
        }
    }
    if let Some(msg) = combined_failure {
        // Attribute the contradiction to the wordline certificate (the
        // only rule with a nontrivial abstract transcription shared by
        // all technologies) unless a per-rule check already failed.
        if sub_cert.sound && wl_cert.sound && sm_cert.sound {
            wl_cert.sound = false;
            wl_cert.counterexample = Some(msg);
        }
    }

    let sound = sub_cert.sound && wl_cert.sound && sm_cert.sound;
    let bounds = if sound {
        extract_bounds(dom, &wl_verdicts, &row_verdicts)
    } else {
        CertifiedBounds::conservative()
    };
    Proof {
        cell_tech: dom.cell_tech,
        nodes: dom.nodes.clone(),
        cols_cap: dom.cols_cap,
        rows_cap: dom.rows_cap,
        certificates: [sub_cert, wl_cert, sm_cert],
        combined_cross_checks,
        bounds,
        sound,
    }
}

/// Folds per-rule verdicts into the combined first-failure outcome
/// (mirrors `AbsScreen::outcome` over precomputed axis verdicts).
fn fold_outcome(sub: Verdict, wl: Verdict, sense: Verdict) -> AbsOutcome {
    for (rule, v) in [
        (PrescreenFailure::SubarrayRows, sub),
        (PrescreenFailure::WordlineElmore, wl),
        (PrescreenFailure::SenseMargin, sense),
    ] {
        match v {
            Verdict::Never => {}
            Verdict::Always => return AbsOutcome::Reject(rule),
            Verdict::Mixed => return AbsOutcome::Undecided,
        }
    }
    AbsOutcome::Pass
}

/// Derives the certified cutoffs from the scanned verdict arrays: the
/// longest all-`Never` prefix certifies passes, the longest all-`Always`
/// suffix certifies rejects. No monotonicity is assumed — a rule whose
/// verdicts oscillate simply certifies less.
fn extract_bounds(
    dom: &Domain,
    wl_verdicts: &[Verdict],
    row_verdicts: &[(u64, Verdict, Verdict)],
) -> CertifiedBounds {
    let mut wordline_pass_upto = 0u64;
    for (i, v) in wl_verdicts.iter().enumerate() {
        if *v != Verdict::Never {
            break;
        }
        wordline_pass_upto = i as u64 + 1;
    }
    let mut wordline_reject_above = u64::MAX;
    let last_non_always = wl_verdicts.iter().rposition(|v| *v != Verdict::Always);
    match last_non_always {
        Some(i) if i as u64 + 1 < dom.cols_cap => wordline_reject_above = i as u64 + 1,
        None if !wl_verdicts.is_empty() => wordline_reject_above = 0,
        _ => {}
    }

    // The sense axis: power-of-two rows within the cap, in ascending order.
    let sense: Vec<(u64, Verdict)> = row_verdicts
        .iter()
        .filter(|(rows, _, _)| *rows <= dom.rows_cap)
        .map(|&(rows, _, v)| (rows, v))
        .collect();
    let mut sense_pass_upto = 0u64;
    for &(rows, v) in &sense {
        if v != Verdict::Never {
            break;
        }
        sense_pass_upto = rows;
    }
    let mut sense_reject_from = u64::MAX;
    for &(rows, v) in sense.iter().rev() {
        if v != Verdict::Always {
            break;
        }
        sense_reject_from = rows;
    }

    CertifiedBounds {
        cols_domain: dom.cols_cap,
        rows_domain: dom.rows_cap,
        wordline_pass_upto,
        wordline_reject_above,
        sense_pass_upto,
        sense_reject_from,
    }
}

/// Certified prescreen cutoffs for one `(node, cell)` pair — the
/// memoizable entry the explore engine and the `--certified` solve path
/// consume. Conservative (a no-op for the fast paths) when the scan finds
/// any unsoundness.
#[must_use]
pub fn certified_bounds(node: TechNode, cell_tech: CellTechnology) -> CertifiedBounds {
    certify(&Domain::for_node(node, cell_tech)).bounds
}

/// Certified enclosures of the bitline components of the published
/// metrics, hulled over every organization the spec's enumeration emits
/// that the abstract screen cannot definitely reject (a superset of the
/// feasible set, which is what makes the one-sided window claims sound).
#[derive(Debug, Clone, Copy)]
pub struct WindowEnclosures {
    /// Organizations enumerated for the spec.
    pub orgs: usize,
    /// Organizations the abstract screen cannot definitely reject.
    pub surviving: usize,
    /// Enclosure of the bitline delay component (`access_time` is this
    /// plus non-negative terms).
    pub t_bitline: Option<Iv<Seconds>>,
    /// Enclosure of the bitline energy component (`read_energy` is this
    /// plus non-negative terms).
    pub e_bitline: Option<Iv<Joules>>,
}

/// Computes the window enclosures for one spec over a domain.
#[must_use]
pub fn window_enclosures(dom: &Domain, spec: &MemorySpec) -> WindowEnclosures {
    let mut orgs = 0usize;
    let mut surviving = 0usize;
    let mut t_hull: Option<Iv<Seconds>> = None;
    let mut e_hull: Option<Iv<Joules>> = None;
    for org in org::enumerate_lazy(spec) {
        orgs += 1;
        let rows = org.rows(spec);
        let cols = org.cols(spec);
        if matches!(
            abs_prescreen(dom, rows, cols).outcome(),
            AbsOutcome::Reject(_)
        ) {
            continue;
        }
        surviving += 1;
        let rows_f = Iv::exact(rows as f64);
        // Mirrors `evaluate`'s bitline state:
        //   c_bl = c_bitline_per_cell·rows + 2·c_drain·min_width
        //   r_bl = r_bitline_per_cell·rows
        let c_bl = dom.cell.c_bitline_per_cell * rows_f
            + (Iv::exact(2.0_f64) * dom.periph_c_drain) * dom.periph_min_width;
        let r_bl = dom.cell.r_bitline_per_cell * rows_f;
        let t_bl: Iv<Seconds> = if dom.is_dram() {
            // c_eff through the same raw-SI escape hatch as `evaluate`.
            let cs = dom.cell.c_storage;
            let c_eff = (cs.cast::<f64>() * c_bl.cast::<f64>() / (cs + c_bl).cast::<f64>())
                .cast::<cactid_units::Farads>();
            ((dom.cell.timing_derate * Iv::exact(cal::TAU_SHARE))
                * (dom.cell.r_access_on + r_bl / Iv::exact(2.0_f64)))
                * c_eff
        } else {
            let swing = Iv::exact(cal::SRAM_BL_SWING_MULT) * dom.cell.v_sense_margin;
            c_bl * swing / dom.cell.i_cell_read + (Iv::exact(0.38_f64) * r_bl) * c_bl
        };
        let stripe = Iv::exact(org.stripe_bits(spec) as f64);
        let vdd = dom.cell.vdd_cell;
        let e_bl: Iv<Joules> = if dom.is_dram() {
            let half_bl = c_bl * vdd * vdd / Iv::exact(2.0_f64);
            let half_cs = dom.cell.c_storage * vdd * vdd / Iv::exact(2.0_f64);
            (stripe * Iv::exact(cal::DRAM_BL_CYCLE_FACTOR)) * (half_bl + half_cs)
        } else {
            let swing = Iv::exact(cal::SRAM_BL_SWING_MULT) * dom.cell.v_sense_margin;
            stripe * c_bl * vdd * swing
        };
        t_hull = Some(t_hull.map_or(t_bl, |h| h.hull(t_bl)));
        e_hull = Some(e_hull.map_or(e_bl, |h| h.hull(e_bl)));
    }
    WindowEnclosures {
        orgs,
        surviving,
        t_bitline: t_hull,
        e_bitline: e_hull,
    }
}

/// A whole-spec proof: the domain certification plus the spec's window
/// enclosures.
#[derive(Debug, Clone)]
pub struct SpecProof {
    /// The domain certificates and certified bounds.
    pub proof: Proof,
    /// The reachable-metric enclosures over the spec's enumeration.
    pub windows: WindowEnclosures,
}

/// Certifies a spec: builds the domain its node induces, runs the full
/// scan, and computes the window enclosures over its enumeration.
#[must_use]
pub fn certify_spec(spec: &MemorySpec) -> SpecProof {
    let dom = Domain::for_node(spec.node, spec.cell_tech);
    let windows = window_enclosures(&dom, spec);
    SpecProof {
        proof: certify(&dom),
        windows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cactid_core::array::prescreen_verdict_with;

    #[test]
    fn every_anchor_domain_certifies_sound() {
        for &node in TechNode::ALL_WITH_HALF_NODES {
            for &tech in &[
                CellTechnology::Sram,
                CellTechnology::LpDram,
                CellTechnology::CommDram,
            ] {
                let proof = certify(&Domain::for_node(node, tech));
                assert!(proof.sound, "{node} {tech:?}: {:?}", proof.certificates);
                assert!(proof.combined_cross_checks > 0);
                for c in &proof.certificates {
                    assert!(
                        c.sound,
                        "{node} {tech:?} {:?}: {:?}",
                        c.rule, c.counterexample
                    );
                }
            }
        }
    }

    #[test]
    fn certified_bounds_agree_with_the_concrete_screen_everywhere() {
        // The production guarantee behind the `--certified` flag, checked
        // densely: the certified verdict (and reason) equals the concrete
        // screen's at every point of a cols × rows grid.
        for &(node, tech) in &[
            (TechNode::N32, CellTechnology::Sram),
            (TechNode::N78, CellTechnology::CommDram),
        ] {
            let bounds = certified_bounds(node, tech);
            let cell = Technology::cached(node).cell(tech);
            for cols in (1..=org::SWEEP_BOUNDS.max_cols).step_by(37) {
                for rows in [1u64, 2, 16, 128, 512, 1024, 2048] {
                    let fast = prescreen_verdict_with(&cell, rows, cols, &bounds);
                    let exact = prescreen_explain(&cell, rows, cols).map(|_| ());
                    assert_eq!(fast, exact, "{node} {tech:?} at ({rows},{cols})");
                }
            }
        }
    }

    #[test]
    fn bounds_certify_nontrivial_regions() {
        // The point of the exercise: the certificates must actually bite
        // (feed ROADMAP Open item 2), not just hold vacuously.
        let b = certified_bounds(TechNode::N78, CellTechnology::CommDram);
        assert!(b.wordline_pass_upto > 0, "{b:?}");
        assert!(
            b.wordline_reject_above < u64::MAX,
            "COMM-DRAM wordlines must hit the 3 ns bound within the sweep box: {b:?}"
        );
        assert!(b.sense_pass_upto > 0, "{b:?}");
        let sram = certified_bounds(TechNode::N32, CellTechnology::Sram);
        assert!(sram.wordline_pass_upto > 0, "{sram:?}");
    }

    #[test]
    fn window_enclosures_cover_a_solved_spec() {
        use cactid_core::{solve, AccessMode, MemoryKind};
        let spec = MemorySpec::builder()
            .capacity_bytes(1 << 20)
            .block_bytes(64)
            .associativity(8)
            .banks(1)
            .cell_tech(CellTechnology::Sram)
            .node(TechNode::N32)
            .kind(MemoryKind::Cache {
                access_mode: AccessMode::Normal,
            })
            .build()
            .unwrap();
        let dom = Domain::for_node(spec.node, spec.cell_tech);
        let w = window_enclosures(&dom, &spec);
        assert!(w.surviving > 0 && w.surviving <= w.orgs);
        let (Some(t), Some(e)) = (w.t_bitline, w.e_bitline) else {
            panic!("survivors imply enclosures");
        };
        // One-sided soundness: every feasible solution's access time and
        // read energy sit at or above the certified component floor.
        for sol in solve(&spec).unwrap() {
            assert!(
                sol.access_time >= t.lo(),
                "{} < {}",
                sol.access_time,
                t.lo()
            );
            assert!(
                sol.read_energy >= e.lo(),
                "{} < {}",
                sol.read_energy,
                e.lo()
            );
        }
        assert!(t.lo() > Seconds::ZERO && e.lo() > Joules::ZERO);
    }
}
