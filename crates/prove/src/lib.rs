//! `cactid-prove`: interval-arithmetic soundness certificates for the
//! CACTI-D prune/lint pipeline.
//!
//! The solver's prescreen ([`cactid_core::array`]) rejects organizations
//! with three closed-form tests — the subarray row cap, the 0.38·R·C
//! wordline Elmore bound, and the DRAM charge-sharing sense margin — and
//! the dynamic `staged_equivalence` suite checks, point by point, that
//! pruning never changes the answer. This crate proves the *static*
//! counterpart: it re-runs the exact same closed forms over
//! **interval-valued** inputs covering a whole technology domain and an
//! entire sweep box at once, and cross-checks every definite abstract
//! verdict against the concrete screen.
//!
//! Three analyses come out of one scan:
//!
//! 1. **Soundness certificates** ([`cert::Certificate`]): at every point
//!    where the abstract screen is definite, the concrete screen agrees —
//!    including the failure *reason*, because the abstract fold respects
//!    the concrete check order. Since `array::evaluate` runs the identical
//!    screen first, "rule rejects ⇒ evaluate rejects" follows.
//! 2. **Window / dead-rule analysis** ([`cert::WindowEnclosures`],
//!    [`diag::MetricWindow`]): certified enclosures of the bitline
//!    components of the published metrics over every organization the
//!    enumeration emits, used to flag plausibility windows that are
//!    vacuous, clip the whole reachable range, or have a low edge no
//!    reachable value can ever cross (`CD0202`/`CD0203`).
//! 3. **Certified bounds** ([`cert::certified_bounds`]): per-node integer
//!    cutoffs (`CertifiedBounds`) extracted from the all-pass prefix and
//!    all-reject suffix of the scan, consumed by the solver's opt-in
//!    `--certified` fast path — which remains byte-identical by
//!    construction because unsound scans degrade to the conservative
//!    element and the fast path falls back to the concrete test anywhere
//!    outside the certified region.
//!
//! The layering is deliberate: `prove` sits **beside** `cactid-analyze`,
//! not above it — both depend only on `cactid-core`/`-tech`/`-units`.
//! Findings are emitted as `cactid_core::lint` records under the new
//! `CD02xx` codes so the existing renderers (text and JSON) work
//! unchanged; the window constants to analyze are passed in by the caller.
//!
//! ```
//! use cactid_prove::{certified_bounds, certify_spec};
//! use cactid_tech::{CellTechnology, TechNode};
//!
//! let bounds = certified_bounds(TechNode::N32, CellTechnology::Sram);
//! assert!(bounds.wordline_pass_upto > 0);
//! ```

pub mod cert;
pub mod diag;
pub mod domain;
pub mod iv;
pub mod screen;

pub use cert::{
    certified_bounds, certify, certify_spec, window_enclosures, Certificate, Proof, SpecProof,
    WindowEnclosures,
};
pub use diag::{
    diagnostics, text_summary, MetricWindow, WindowMetric, BOUNDS_CODE, DEAD_EDGE_CODE,
    SOUNDNESS_CODE, WINDOW_CODE,
};
pub use domain::{CellIv, Domain};
pub use iv::{Iv, Verdict};
pub use screen::{abs_prescreen, abs_sense_signal, abs_wordline_rc, AbsOutcome, AbsScreen};
