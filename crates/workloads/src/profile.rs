//! The synthetic workload profile: region sizes, access mix, locality and
//! synchronization cadence.

/// A stationary synthetic workload description for one application.
///
/// Probabilities are per *instruction*; `p_fp + p_other + p_mem` should sum
/// to 1 (validated by [`Profile::validate`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Application label.
    pub name: &'static str,
    /// Probability an instruction is floating-point.
    pub p_fp: f64,
    /// Probability an instruction is non-FP, non-memory.
    pub p_other: f64,
    /// Probability an instruction is a memory operation.
    pub p_mem: f64,
    /// Of memory operations, fraction that are stores.
    pub store_frac: f64,
    /// Per-thread hot region size \[bytes\] (L1/L2-resident).
    pub hot_bytes: u64,
    /// Total warm region size \[bytes\] — the L3-contended working set,
    /// partitioned across threads.
    pub warm_bytes: u64,
    /// Total cold region size \[bytes\] — effectively uncacheable.
    pub cold_bytes: u64,
    /// Of memory operations: probability of hitting hot / warm / cold /
    /// shared regions (must sum to 1).
    pub p_hot: f64,
    /// Warm-region probability.
    pub p_warm: f64,
    /// Cold-region probability.
    pub p_cold: f64,
    /// Shared-region probability (coherence traffic).
    pub p_shared: f64,
    /// Mean sequential run length in cache lines (spatial locality).
    pub seq_run_lines: u32,
    /// Fraction of warm accesses that go to a neighbour thread's partition
    /// (OpenMP halo exchange style).
    pub p_neighbor: f64,
    /// Instructions between barriers, per thread (0 = no barriers).
    pub barrier_interval: u64,
    /// Instructions between lock acquisitions, per thread (0 = none).
    pub lock_interval: u64,
    /// Instructions a lock is held.
    pub lock_hold: u64,
}

/// Shared region size \[bytes\] — small, heavily contended.
pub const SHARED_BYTES: u64 = 4 << 20;

impl Profile {
    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        let sum = self.p_fp + self.p_other + self.p_mem;
        if (sum - 1.0).abs() > 1e-9 {
            return Err(format!("{}: instruction mix sums to {sum}", self.name));
        }
        let rsum = self.p_hot + self.p_warm + self.p_cold + self.p_shared;
        if (rsum - 1.0).abs() > 1e-9 {
            return Err(format!("{}: region mix sums to {rsum}", self.name));
        }
        for (what, v) in [
            ("store_frac", self.store_frac),
            ("p_neighbor", self.p_neighbor),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{}: {what} out of range: {v}", self.name));
            }
        }
        if self.hot_bytes < 4096 || self.warm_bytes < 1 << 20 || self.cold_bytes < 1 << 20 {
            return Err(format!("{}: regions too small", self.name));
        }
        if self.seq_run_lines == 0 {
            return Err(format!("{}: zero run length", self.name));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Profile {
        Profile {
            name: "test",
            p_fp: 0.4,
            p_other: 0.3,
            p_mem: 0.3,
            store_frac: 0.3,
            hot_bytes: 64 << 10,
            warm_bytes: 64 << 20,
            cold_bytes: 4 << 30,
            p_hot: 0.6,
            p_warm: 0.3,
            p_cold: 0.05,
            p_shared: 0.05,
            seq_run_lines: 8,
            p_neighbor: 0.1,
            barrier_interval: 50_000,
            lock_interval: 0,
            lock_hold: 20,
        }
    }

    #[test]
    fn valid_profile_passes() {
        assert_eq!(base().validate(), Ok(()));
    }

    #[test]
    fn bad_mix_fails() {
        let mut p = base();
        p.p_fp = 0.9;
        assert!(p.validate().unwrap_err().contains("instruction mix"));
        let mut p = base();
        p.p_hot = 0.9;
        assert!(p.validate().unwrap_err().contains("region mix"));
    }
}
