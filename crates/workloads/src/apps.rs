//! The eight NPB application profiles of the LLC study (paper §3.2, with
//! behaviours per §4.2).

use crate::profile::Profile;
use std::fmt;

/// NPB problem classes. The paper runs the classes shown in its figures
/// (bt.C, ft.B, …); the generator can scale any application to a different
/// class for sensitivity studies — each class step roughly quadruples the
/// aggregate working set, following the NPB size progression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NpbClass {
    /// Small (working sets ~1/16 of the paper's class).
    A,
    /// Medium (~1/4 of the paper's class).
    B,
    /// The paper's scale.
    C,
}

impl NpbClass {
    /// Working-set scale factor relative to the class the paper ran.
    pub fn scale(self) -> f64 {
        match self {
            NpbClass::A => 1.0 / 16.0,
            NpbClass::B => 0.25,
            NpbClass::C => 1.0,
        }
    }
}

/// One of the NPB applications the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NpbApp {
    /// bt.C — block tridiagonal solver, large working set with locality.
    BtC,
    /// cg.C — conjugate gradient, huge sparse working set, no L3 locality.
    CgC,
    /// ft.B — 3-D FFT, working set fits the larger L3s.
    FtB,
    /// is.C — integer sort, large working set, store heavy, low FP.
    IsC,
    /// lu.C — LU solver, working set fits only the big L3s.
    LuC,
    /// mg.B — multigrid, large sequential working set.
    MgB,
    /// sp.C — scalar pentadiagonal solver, large working set with locality.
    SpC,
    /// ua.C — unstructured adaptive, low memory intensity, lock traffic.
    UaC,
}

impl NpbApp {
    /// All eight applications in the paper's plotting order.
    pub const ALL: &'static [NpbApp] = &[
        NpbApp::BtC,
        NpbApp::CgC,
        NpbApp::FtB,
        NpbApp::IsC,
        NpbApp::LuC,
        NpbApp::MgB,
        NpbApp::SpC,
        NpbApp::UaC,
    ];

    /// The profile rescaled to a different NPB class: warm and cold
    /// working sets shrink with the class while the instruction mix stays
    /// put (the paper's observation that SPEC-sized working sets fit in
    /// caches far smaller than 192 MB is the A-class limit of this).
    pub fn profile_for_class(self, class: NpbClass) -> Profile {
        let mut p = self.profile();
        let s = class.scale();
        p.warm_bytes = ((p.warm_bytes as f64 * s) as u64).max(4 << 20);
        p.cold_bytes = ((p.cold_bytes as f64 * s) as u64).max(64 << 20);
        p
    }

    /// The synthetic profile reproducing this application's memory
    /// behaviour (§4.2 of the paper; see crate docs for the mapping).
    pub fn profile(self) -> Profile {
        const KB: u64 = 1 << 10;
        const MB: u64 = 1 << 20;
        const GB: u64 = 1 << 30;
        match self {
            NpbApp::BtC => Profile {
                name: "bt.C",
                p_fp: 0.42,
                p_other: 0.33,
                p_mem: 0.25,
                store_frac: 0.30,
                hot_bytes: 96 * KB,
                warm_bytes: 400 * MB,
                cold_bytes: 2 * GB,
                p_hot: 0.70,
                p_warm: 0.27,
                p_cold: 0.01,
                p_shared: 0.02,
                seq_run_lines: 12,
                p_neighbor: 0.05,
                barrier_interval: 60_000,
                lock_interval: 0,
                lock_hold: 0,
            },
            NpbApp::CgC => Profile {
                name: "cg.C",
                p_fp: 0.30,
                p_other: 0.35,
                p_mem: 0.35,
                store_frac: 0.15,
                hot_bytes: 64 * KB,
                warm_bytes: 1536 * MB,
                cold_bytes: 6 * GB,
                p_hot: 0.55,
                p_warm: 0.10,
                p_cold: 0.33,
                p_shared: 0.02,
                seq_run_lines: 2,
                p_neighbor: 0.10,
                barrier_interval: 40_000,
                lock_interval: 0,
                lock_hold: 0,
            },
            NpbApp::FtB => Profile {
                name: "ft.B",
                p_fp: 0.45,
                p_other: 0.25,
                p_mem: 0.30,
                store_frac: 0.35,
                hot_bytes: 64 * KB,
                warm_bytes: 60 * MB,
                cold_bytes: 2 * GB,
                p_hot: 0.55,
                p_warm: 0.43,
                p_cold: 0.005,
                p_shared: 0.015,
                seq_run_lines: 16,
                p_neighbor: 0.15,
                barrier_interval: 50_000,
                lock_interval: 0,
                lock_hold: 0,
            },
            NpbApp::IsC => Profile {
                name: "is.C",
                p_fp: 0.08,
                p_other: 0.52,
                p_mem: 0.40,
                store_frac: 0.45,
                hot_bytes: 64 * KB,
                warm_bytes: 300 * MB,
                cold_bytes: 2 * GB,
                p_hot: 0.72,
                p_warm: 0.25,
                p_cold: 0.01,
                p_shared: 0.02,
                seq_run_lines: 4,
                p_neighbor: 0.05,
                barrier_interval: 30_000,
                lock_interval: 0,
                lock_hold: 0,
            },
            NpbApp::LuC => Profile {
                name: "lu.C",
                p_fp: 0.44,
                p_other: 0.28,
                p_mem: 0.28,
                store_frac: 0.30,
                hot_bytes: 80 * KB,
                warm_bytes: 110 * MB,
                cold_bytes: 2 * GB,
                p_hot: 0.52,
                p_warm: 0.455,
                p_cold: 0.005,
                p_shared: 0.02,
                seq_run_lines: 10,
                p_neighbor: 0.10,
                barrier_interval: 45_000,
                lock_interval: 0,
                lock_hold: 0,
            },
            NpbApp::MgB => Profile {
                name: "mg.B",
                p_fp: 0.36,
                p_other: 0.34,
                p_mem: 0.30,
                store_frac: 0.30,
                hot_bytes: 96 * KB,
                warm_bytes: 450 * MB,
                cold_bytes: 2 * GB,
                p_hot: 0.68,
                p_warm: 0.29,
                p_cold: 0.01,
                p_shared: 0.02,
                seq_run_lines: 20,
                p_neighbor: 0.10,
                barrier_interval: 35_000,
                lock_interval: 0,
                lock_hold: 0,
            },
            NpbApp::SpC => Profile {
                name: "sp.C",
                p_fp: 0.40,
                p_other: 0.30,
                p_mem: 0.30,
                store_frac: 0.32,
                hot_bytes: 96 * KB,
                warm_bytes: 350 * MB,
                cold_bytes: 2 * GB,
                p_hot: 0.68,
                p_warm: 0.29,
                p_cold: 0.01,
                p_shared: 0.02,
                seq_run_lines: 10,
                p_neighbor: 0.08,
                barrier_interval: 50_000,
                lock_interval: 0,
                lock_hold: 0,
            },
            NpbApp::UaC => Profile {
                name: "ua.C",
                p_fp: 0.34,
                p_other: 0.56,
                p_mem: 0.10,
                store_frac: 0.30,
                hot_bytes: 128 * KB,
                warm_bytes: 200 * MB,
                cold_bytes: 2 * GB,
                p_hot: 0.875,
                p_warm: 0.075,
                p_cold: 0.01,
                p_shared: 0.04,
                seq_run_lines: 3,
                p_neighbor: 0.15,
                barrier_interval: 40_000,
                lock_interval: 4_000,
                lock_hold: 25,
            },
        }
    }
}

impl fmt::Display for NpbApp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.profile().name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_validate() {
        for &app in NpbApp::ALL {
            app.profile().validate().unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn class_scaling_shrinks_working_sets() {
        for &app in NpbApp::ALL {
            let a = app.profile_for_class(NpbClass::A);
            let b = app.profile_for_class(NpbClass::B);
            let c = app.profile_for_class(NpbClass::C);
            assert!(a.warm_bytes <= b.warm_bytes);
            assert!(b.warm_bytes <= c.warm_bytes);
            assert_eq!(c.warm_bytes, app.profile().warm_bytes);
            a.validate().unwrap();
            b.validate().unwrap();
        }
        // An A-class working set fits in the big L3s easily.
        assert!(NpbApp::BtC.profile_for_class(NpbClass::A).warm_bytes <= 96 << 20);
    }

    #[test]
    fn app_grouping_matches_the_paper() {
        // ft.B and lu.C warm sets fit the big L3s (≤ 192 MB)…
        assert!(NpbApp::FtB.profile().warm_bytes <= 192 << 20);
        assert!(NpbApp::LuC.profile().warm_bytes <= 192 << 20);
        // …but exceed the 24 MB SRAM L3.
        assert!(NpbApp::LuC.profile().warm_bytes > 24 << 20);
        // bt/is/mg/sp exceed every L3.
        for app in [NpbApp::BtC, NpbApp::IsC, NpbApp::MgB, NpbApp::SpC] {
            assert!(app.profile().warm_bytes > 192 << 20, "{app:?}");
        }
        // cg.C has the least reusable warm locality; ua.C the lowest
        // memory intensity, and it is the only lock user.
        assert!(NpbApp::CgC.profile().p_cold > 0.2);
        let ua = NpbApp::UaC.profile();
        assert!(ua.p_mem < 0.2);
        assert!(ua.lock_interval > 0);
    }
}
