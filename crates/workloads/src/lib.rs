//! # npbgen — synthetic NPB-like workloads
//!
//! The paper's LLC study (§3.2) runs OpenMP NAS Parallel Benchmarks (bt.C,
//! cg.C, ft.B, is.C, lu.C, mg.B, sp.C, ua.C) under a full-system simulator.
//! We do not have COTSon or 10-billion-instruction NPB runs; instead, each
//! application is replaced by a *synthetic profile* that reproduces the
//! memory behaviour the paper describes in §4.2:
//!
//! * **ft.B, lu.C** — the working set beyond L2 largely *fits in the L3
//!   candidates*: big IPC gains from an L3; the 24 MB SRAM L3 is too small
//!   (especially for lu.C).
//! * **bt.C, is.C, mg.B, sp.C** — working sets *bigger than every L3*, but
//!   with locality: bigger L3s monotonically help.
//! * **cg.C** — no reusable locality beyond L2: every L3 fails to filter.
//! * **ua.C** — low L3 access frequency: insensitive to the L3.
//!
//! A profile is a stationary mixture over four address regions (per-thread
//! hot, partitioned warm, huge cold, small shared) with short sequential
//! runs for spatial locality, plus FP/other instruction mix, store
//! fraction, and barrier/lock cadence. Profiles are deterministic per
//! (application, thread).
//!
//! # Example
//!
//! ```
//! use npbgen::{NpbApp, NpbTrace};
//! use memsim::{Simulator, SystemConfig};
//!
//! let trace = NpbTrace::new(NpbApp::FtB, 32);
//! let mut sim = Simulator::new(SystemConfig::with_sram_l3(), trace);
//! let stats = sim.run(50_000);
//! assert!(stats.instructions >= 50_000);
//! ```

pub mod apps;
pub mod generator;
pub mod profile;

pub use apps::{NpbApp, NpbClass};
pub use generator::NpbTrace;
pub use profile::Profile;
