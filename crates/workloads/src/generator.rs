//! The trace generator: turns a [`Profile`] into per-thread instruction
//! streams implementing [`memsim::TraceSource`].

use crate::apps::{NpbApp, NpbClass};
use crate::profile::{Profile, SHARED_BYTES};
use memsim::{Instr, TraceSource};

/// Address-space layout (16 GB physical):
/// per-thread hot regions, then warm, cold and shared regions.
const HOT_BASE: u64 = 0;
const HOT_STRIDE: u64 = 32 << 20; // 32 MB per thread slot
const WARM_BASE: u64 = 1 << 30; // 1 GB
const COLD_BASE: u64 = 8 << 30; // 8 GB
const SHARED_BASE: u64 = 15 << 30; // 15 GB
const LINE: u64 = 64;

#[derive(Debug, Clone)]
struct ThreadGen {
    rng: u64,
    instrs: u64,
    /// Remaining lines in the current sequential run and its cursor.
    run_left: u32,
    cursor: u64,
    /// Instructions until the held lock is released (0 = not holding).
    lock_release_in: u64,
    held_lock: Option<u32>,
}

/// Deterministic synthetic trace for one application across `n_threads`
/// hardware threads.
#[derive(Debug, Clone)]
pub struct NpbTrace {
    profile: Profile,
    n_threads: usize,
    threads: Vec<ThreadGen>,
}

impl NpbTrace {
    /// Creates the trace for `app` with `n_threads` threads (the study
    /// uses 32).
    ///
    /// # Panics
    ///
    /// Panics if `n_threads` is 0 or the profile fails validation.
    pub fn new(app: NpbApp, n_threads: usize) -> NpbTrace {
        NpbTrace::from_profile(app.profile(), n_threads)
    }

    /// Creates the trace for `app` rescaled to `class`.
    ///
    /// # Panics
    ///
    /// Panics if `n_threads` is 0.
    pub fn with_class(app: NpbApp, class: NpbClass, n_threads: usize) -> NpbTrace {
        NpbTrace::from_profile(app.profile_for_class(class), n_threads)
    }

    /// Creates a trace from an explicit profile (for ablations).
    ///
    /// # Panics
    ///
    /// Panics if `n_threads` is 0 or the profile fails validation.
    pub fn from_profile(profile: Profile, n_threads: usize) -> NpbTrace {
        NpbTrace::from_profile_seeded(profile, n_threads, 0)
    }

    /// [`NpbTrace::from_profile`] with an explicit global seed.
    ///
    /// Per-thread generator states are `(seed, tid)` splitmix expansions
    /// (`memsim::rng::splitmix64`), replacing the old affine
    /// `(tid + 1) × golden-ratio` seeding whose streams were linearly
    /// related. Each thread's stream is a pure function of the pair, so
    /// workload generation is independent of thread polling order —
    /// bitwise identical between the serial and sharded simulators at any
    /// shard count.
    ///
    /// # Panics
    ///
    /// Panics if `n_threads` is 0 or the profile fails validation.
    pub fn from_profile_seeded(profile: Profile, n_threads: usize, seed: u64) -> NpbTrace {
        assert!(n_threads > 0);
        if let Err(e) = profile.validate() {
            panic!("profile must be consistent: {e}");
        }
        let mixed = memsim::rng::splitmix64(seed);
        let threads = (0..n_threads)
            .map(|t| ThreadGen {
                rng: memsim::rng::splitmix64(mixed ^ t as u64) | 1,
                instrs: 0,
                run_left: 0,
                cursor: 0,
                lock_release_in: 0,
                held_lock: None,
            })
            .collect();
        NpbTrace {
            profile,
            n_threads,
            threads,
        }
    }

    /// The profile driving this trace.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    fn rng(t: &mut ThreadGen) -> u64 {
        t.rng ^= t.rng << 13;
        t.rng ^= t.rng >> 7;
        t.rng ^= t.rng << 17;
        t.rng.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform f64 in [0,1).
    fn unif(t: &mut ThreadGen) -> f64 {
        (Self::rng(t) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Picks the next memory address for thread `tid`.
    fn address(&mut self, tid: usize) -> u64 {
        let p = self.profile.clone();
        let t = &mut self.threads[tid];

        // Continue a sequential run for spatial locality.
        if t.run_left > 0 {
            t.run_left -= 1;
            t.cursor += LINE;
            return t.cursor;
        }

        let r = Self::unif(t);
        let (base, size) = if r < p.p_hot {
            (HOT_BASE + tid as u64 * HOT_STRIDE, p.hot_bytes)
        } else if r < p.p_hot + p.p_warm {
            // Partitioned warm region: mostly own slice, sometimes a
            // neighbour's (halo exchange).
            let slice = (p.warm_bytes / self.n_threads as u64).max(LINE * 16);
            let owner = if Self::unif(t) < p.p_neighbor {
                (tid + 1) % self.n_threads
            } else {
                tid
            };
            (WARM_BASE + owner as u64 * slice, slice)
        } else if r < p.p_hot + p.p_warm + p.p_cold {
            (COLD_BASE, p.cold_bytes)
        } else {
            (SHARED_BASE, SHARED_BYTES)
        };

        let lines = (size / LINE).max(1);
        let line = Self::rng(t) % lines;
        let addr = base + line * LINE;
        // Start a sequential run from here.
        let mean = u64::from(p.seq_run_lines.max(1));
        t.run_left = (Self::rng(t) % (2 * mean)) as u32;
        t.cursor = addr;
        addr
    }
}

impl TraceSource for NpbTrace {
    fn next(&mut self, tid: usize) -> Instr {
        let p = self.profile.clone();
        {
            let t = &mut self.threads[tid];
            t.instrs += 1;

            // Release a held lock when its hold time elapses.
            if let Some(id) = t.held_lock {
                t.lock_release_in = t.lock_release_in.saturating_sub(1);
                if t.lock_release_in == 0 {
                    t.held_lock = None;
                    return Instr::Unlock(id);
                }
            }
            // Barrier cadence.
            if p.barrier_interval > 0 && t.instrs.is_multiple_of(p.barrier_interval) {
                return Instr::Barrier;
            }
            // Lock cadence (only when not already holding one).
            if p.lock_interval > 0
                && t.held_lock.is_none()
                && t.instrs.is_multiple_of(p.lock_interval)
            {
                let id = (Self::rng(t) % 16) as u32;
                t.held_lock = Some(id);
                t.lock_release_in = p.lock_hold.max(1);
                return Instr::Lock(id);
            }
        }

        let r = Self::unif(&mut self.threads[tid]);
        if r < p.p_mem {
            let addr = self.address(tid);
            let t = &mut self.threads[tid];
            if Self::unif(t) < p.store_frac {
                Instr::Store(addr)
            } else {
                Instr::Load(addr)
            }
        } else if r < p.p_mem + p.p_fp {
            Instr::Fp
        } else {
            Instr::Other
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn class_a_addresses_stay_in_smaller_warm_region() {
        let mut t = NpbTrace::with_class(NpbApp::BtC, NpbClass::A, 4);
        let warm_size = t.profile().warm_bytes;
        assert!(warm_size < NpbApp::BtC.profile().warm_bytes);
        for _ in 0..50_000 {
            if let Instr::Load(a) | Instr::Store(a) = t.next(1) {
                if (WARM_BASE..COLD_BASE).contains(&a) {
                    assert!(a < WARM_BASE + warm_size + (1 << 20));
                }
            }
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = NpbTrace::new(NpbApp::FtB, 8);
        let mut b = NpbTrace::new(NpbApp::FtB, 8);
        for tid in 0..8 {
            for _ in 0..1000 {
                assert_eq!(a.next(tid), b.next(tid));
            }
        }
    }

    #[test]
    fn thread_streams_are_polling_order_independent() {
        // A shard that only polls its own threads must see the same
        // streams as the serial simulator polling everyone: each thread's
        // stream depends only on (seed, tid).
        let mut solo = NpbTrace::new(NpbApp::FtB, 8);
        let mut interleaved = NpbTrace::new(NpbApp::FtB, 8);
        for step in 0..2000 {
            let want = solo.next(3);
            for tid in (0..8).filter(|&t| t != 3) {
                if (step + tid) % 3 == 0 {
                    let _ = interleaved.next(tid);
                }
            }
            assert_eq!(want, interleaved.next(3));
        }
    }

    #[test]
    fn seeded_traces_differ_but_are_reproducible() {
        let p = NpbApp::FtB.profile();
        let mut a = NpbTrace::from_profile_seeded(p.clone(), 4, 11);
        let mut b = NpbTrace::from_profile_seeded(p.clone(), 4, 11);
        let mut c = NpbTrace::from_profile_seeded(p, 4, 12);
        let mut same = true;
        for _ in 0..500 {
            let x = a.next(2);
            assert_eq!(x, b.next(2));
            same &= x == c.next(2);
        }
        assert!(!same, "different seeds must yield different streams");
    }

    #[test]
    fn mix_matches_profile_statistically() {
        let mut t = NpbTrace::new(NpbApp::BtC, 4);
        let p = t.profile().clone();
        let n = 200_000;
        let mut mem = 0;
        let mut fp = 0;
        for _ in 0..n {
            match t.next(0) {
                Instr::Load(_) | Instr::Store(_) => mem += 1,
                Instr::Fp => fp += 1,
                _ => {}
            }
        }
        let mem_frac = f64::from(mem) / f64::from(n);
        let fp_frac = f64::from(fp) / f64::from(n);
        assert!((mem_frac - p.p_mem).abs() < 0.02, "mem {mem_frac}");
        assert!((fp_frac - p.p_fp).abs() < 0.02, "fp {fp_frac}");
    }

    #[test]
    fn addresses_land_in_expected_regions() {
        let mut t = NpbTrace::new(NpbApp::LuC, 32);
        let p = t.profile().clone();
        let mut warm = 0u64;
        let mut total = 0u64;
        for _ in 0..300_000 {
            if let Instr::Load(a) | Instr::Store(a) = t.next(3) {
                total += 1;
                assert!(a < 16 << 30, "address beyond 16 GB: {a:#x}");
                if (WARM_BASE..COLD_BASE).contains(&a) {
                    warm += 1;
                }
            }
        }
        let frac = warm as f64 / total as f64;
        // Warm fraction ≈ p_warm (sequential runs keep it approximate).
        assert!((frac - p.p_warm).abs() < 0.12, "warm fraction {frac}");
    }

    #[test]
    fn barriers_arrive_on_schedule() {
        let mut t = NpbTrace::new(NpbApp::IsC, 2);
        let interval = t.profile().barrier_interval;
        let mut count = 0u64;
        let n = interval * 5;
        for _ in 0..n {
            if t.next(1) == Instr::Barrier {
                count += 1;
            }
        }
        assert_eq!(count, 5);
    }

    #[test]
    fn ua_locks_are_balanced() {
        let mut t = NpbTrace::new(NpbApp::UaC, 4);
        let mut held: Option<u32> = None;
        let mut locks = 0;
        for _ in 0..100_000 {
            match t.next(2) {
                Instr::Lock(id) => {
                    assert!(held.is_none(), "nested lock");
                    held = Some(id);
                    locks += 1;
                }
                Instr::Unlock(id) => {
                    assert_eq!(held, Some(id), "unlock mismatch");
                    held = None;
                }
                _ => {}
            }
        }
        assert!(locks > 10, "ua.C should take locks ({locks})");
    }

    #[test]
    fn warm_working_set_spans_the_declared_size() {
        let mut t = NpbTrace::new(NpbApp::FtB, 32);
        let mut pages = HashSet::new();
        for tid in 0..32 {
            for _ in 0..20_000 {
                if let Instr::Load(a) | Instr::Store(a) = t.next(tid) {
                    if (WARM_BASE..COLD_BASE).contains(&a) {
                        pages.insert(a >> 20); // 1 MB granules
                    }
                }
            }
        }
        let covered_mb = pages.len() as u64;
        let declared_mb = t.profile().warm_bytes >> 20;
        assert!(
            covered_mb > declared_mb / 2,
            "covered {covered_mb} MB of {declared_mb} MB"
        );
    }
}
