//! ITRS device-class models.
//!
//! The paper (§2.2.1) uses the three ITRS device types — HP, LSTP, LOP —
//! plus long-channel HP variants that trade speed for roughly an order of
//! magnitude less subthreshold leakage. Parameters here are width-normalized
//! (per meter of gate width) so circuit models can size transistors freely.

use crate::node::{geo_lerp, TechNode};
use crate::units::{
    AmperesPerMeter, Farads, FaradsPerMeter, Meters, OhmMeters, Ohms, SiemensPerMeter, Volts, Watts,
};
use std::fmt;

/// One of the logic device classes available for memory peripheral and
/// support circuitry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceType {
    /// ITRS High Performance: fastest, leakiest; CV/I improves ~17 %/year.
    Hp,
    /// Long-channel variant of HP: ~20 % slower, ~12× less leaky. Used for
    /// SRAM cells and for SRAM/LP-DRAM peripheral circuitry (Table 1),
    /// following the 65 nm Intel Xeon L3 design.
    HpLongChannel,
    /// ITRS Low Standby Power: gate lengths lag HP by 4 years; leakage held
    /// near 10 pA/µm across nodes. Used for COMM-DRAM peripheral circuitry.
    Lstp,
    /// ITRS Low Operating Power: between HP and LSTP; lowest VDD; gate
    /// lengths lag HP by 2 years.
    Lop,
}

impl DeviceType {
    /// All modeled device classes.
    pub const ALL: &'static [DeviceType] = &[
        DeviceType::Hp,
        DeviceType::HpLongChannel,
        DeviceType::Lstp,
        DeviceType::Lop,
    ];
}

impl fmt::Display for DeviceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DeviceType::Hp => "HP",
            DeviceType::HpLongChannel => "HP long-channel",
            DeviceType::Lstp => "LSTP",
            DeviceType::Lop => "LOP",
        };
        f.write_str(s)
    }
}

/// Width-normalized transistor parameters for one device class at one node,
/// carried as typed quantities so dimensionally illegal formulas fail to
/// compile.
///
/// Conventions:
/// * A transistor of width `w` has gate capacitance `c_gate * w`, drain
///   capacitance `c_drain * w`, effective switching resistance
///   `r_eff_n / w` (NMOS) or `r_eff_n * p_to_n_ratio / w` (PMOS),
///   subthreshold leakage current `i_off_n * w` and gate leakage
///   `i_gate * w`.
/// * "Effective" resistance is calibrated so a fan-out-of-4 inverter delay
///   computed as `0.69·R·C` lands on the usual ~0.4 ps/nm-of-feature-size
///   rule of thumb; it already folds in velocity saturation and the average
///   drive during a transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceParams {
    /// Nominal supply voltage.
    pub vdd: Volts,
    /// Saturation threshold voltage.
    pub vth: Volts,
    /// Physical gate length.
    pub l_gate: Meters,
    /// Gate capacitance per width, including overlap and fringe.
    pub c_gate: FaradsPerMeter,
    /// Drain (junction + overlap) capacitance per width.
    pub c_drain: FaradsPerMeter,
    /// Effective NMOS switching resistance × width.
    pub r_eff_n: OhmMeters,
    /// PMOS width multiplier for drive equal to a unit NMOS (≈ 2).
    pub p_to_n_ratio: f64,
    /// NMOS subthreshold (off-state) leakage per width.
    pub i_off_n: AmperesPerMeter,
    /// Gate leakage per width.
    pub i_gate: AmperesPerMeter,
    /// NMOS transconductance per width.
    pub g_m: SiemensPerMeter,
    /// Minimum drawable transistor width.
    pub min_width: Meters,
    /// NMOS saturation drive current per width.
    pub i_on_n: AmperesPerMeter,
}

impl DeviceParams {
    /// Gate capacitance of a transistor of width `w`.
    pub fn cap_gate(&self, w: Meters) -> Farads {
        self.c_gate * w
    }

    /// Drain capacitance of a transistor of width `w`.
    pub fn cap_drain(&self, w: Meters) -> Farads {
        self.c_drain * w
    }

    /// Effective on-resistance of an NMOS of width `w`.
    pub fn res_on_n(&self, w: Meters) -> Ohms {
        self.r_eff_n / w
    }

    /// Effective on-resistance of a PMOS of width `w`.
    pub fn res_on_p(&self, w: Meters) -> Ohms {
        self.r_eff_n * self.p_to_n_ratio / w
    }

    /// Subthreshold leakage power of `w` meters of (NMOS-equivalent) width
    /// at this class's VDD. PMOS leakage is folded in by callers via an
    /// effective-width convention.
    pub fn leak_power(&self, w: Meters) -> Watts {
        (self.i_off_n + self.i_gate) * w * self.vdd
    }

    /// Input capacitance of a minimum-size inverter in this class.
    pub fn c_inv_min(&self) -> Farads {
        (1.0 + self.p_to_n_ratio) * self.c_gate * self.min_width
    }
}

/// Raw per-node anchor rows. Order: N90, N65, N45, N32.
struct Anchor {
    vdd: [f64; 4],
    vth: [f64; 4],
    l_gate_nm: [f64; 4],
    c_gate_ff_um: [f64; 4],
    c_drain_ff_um: [f64; 4],
    r_eff_ohm_um: [f64; 4],
    i_off: [AmperesPerMeter; 4],
    i_gate: [AmperesPerMeter; 4],
    g_m_ms_um: [f64; 4],
    i_on_ua_um: [f64; 4],
}

const HP: Anchor = Anchor {
    vdd: [1.2, 1.1, 1.0, 0.9],
    vth: [0.28, 0.25, 0.22, 0.20],
    l_gate_nm: [37.0, 25.0, 18.0, 13.0],
    c_gate_ff_um: [1.15, 1.05, 1.00, 0.95],
    c_drain_ff_um: [0.80, 0.75, 0.70, 0.65],
    r_eff_ohm_um: [3300.0, 2370.0, 1650.0, 1180.0],
    i_off: [
        AmperesPerMeter::ua_per_um(0.10),
        AmperesPerMeter::ua_per_um(0.20),
        AmperesPerMeter::ua_per_um(0.28),
        AmperesPerMeter::ua_per_um(0.33),
    ],
    i_gate: [
        AmperesPerMeter::ua_per_um(0.15),
        AmperesPerMeter::ua_per_um(0.35),
        AmperesPerMeter::ua_per_um(0.10),
        AmperesPerMeter::ua_per_um(0.08),
    ],
    g_m_ms_um: [2.0, 2.3, 2.6, 3.0],
    i_on_ua_um: [1100.0, 1250.0, 1400.0, 1550.0],
};

const LSTP: Anchor = Anchor {
    vdd: [1.2, 1.2, 1.1, 1.0],
    vth: [0.55, 0.53, 0.50, 0.48],
    l_gate_nm: [75.0, 45.0, 28.0, 20.0],
    c_gate_ff_um: [1.40, 1.25, 1.15, 1.10],
    c_drain_ff_um: [0.90, 0.85, 0.80, 0.75],
    r_eff_ohm_um: [12000.0, 8600.0, 6000.0, 4300.0],
    // ITRS specifies ~10 pA/µm at 25 °C held constant across nodes; at the
    // ~350 K operating point the models are evaluated at, subthreshold
    // leakage is ~35× higher, giving the sub-nA/µm effective values here.
    i_off: [
        AmperesPerMeter::na_per_um(0.25),
        AmperesPerMeter::na_per_um(0.25),
        AmperesPerMeter::na_per_um(0.25),
        AmperesPerMeter::na_per_um(0.25),
    ],
    i_gate: [
        AmperesPerMeter::pa_per_um(1.0),
        AmperesPerMeter::pa_per_um(2.0),
        AmperesPerMeter::pa_per_um(3.0),
        AmperesPerMeter::pa_per_um(5.0),
    ],
    g_m_ms_um: [0.8, 0.9, 1.1, 1.3],
    i_on_ua_um: [450.0, 500.0, 560.0, 620.0],
};

const LOP: Anchor = Anchor {
    vdd: [0.9, 0.8, 0.7, 0.6],
    vth: [0.36, 0.34, 0.32, 0.30],
    l_gate_nm: [53.0, 32.0, 22.0, 16.0],
    c_gate_ff_um: [1.25, 1.15, 1.05, 1.00],
    c_drain_ff_um: [0.85, 0.80, 0.75, 0.70],
    r_eff_ohm_um: [5950.0, 4270.0, 2970.0, 2120.0],
    i_off: [
        AmperesPerMeter::na_per_um(3.0),
        AmperesPerMeter::na_per_um(3.0),
        AmperesPerMeter::na_per_um(3.5),
        AmperesPerMeter::na_per_um(4.0),
    ],
    i_gate: [
        AmperesPerMeter::na_per_um(0.5),
        AmperesPerMeter::na_per_um(0.8),
        AmperesPerMeter::na_per_um(1.0),
        AmperesPerMeter::na_per_um(1.5),
    ],
    g_m_ms_um: [1.2, 1.4, 1.6, 1.9],
    i_on_ua_um: [600.0, 680.0, 760.0, 850.0],
};

/// Long-channel HP derating factors (paper: "trade off transistor speed for
/// reduction in leakage"; the 65 nm Xeon L3 uses such devices). The leakage
/// factor is an at-operating-temperature effective value calibrated against
/// the paper's Table 3 cache leakage numbers.
const LC_R_FACTOR: f64 = 1.25;
const LC_IOFF_FACTOR: f64 = 0.45;
const LC_IGATE_FACTOR: f64 = 0.5;
const LC_VTH_SHIFT: Volts = Volts::from_si(0.08);
const LC_LGATE_FACTOR: f64 = 1.35;

fn node_index(node: TechNode) -> usize {
    match node {
        TechNode::N90 => 0,
        TechNode::N65 => 1,
        TechNode::N45 => 2,
        TechNode::N32 => 3,
        TechNode::N78 => unreachable!("interpolated before lookup"),
    }
}

fn anchor_params(anchor: &Anchor, node: TechNode, feature: Meters) -> DeviceParams {
    let i = node_index(node);
    DeviceParams {
        vdd: Volts::from_si(anchor.vdd[i]),
        vth: Volts::from_si(anchor.vth[i]),
        l_gate: Meters::nm(anchor.l_gate_nm[i]),
        c_gate: FaradsPerMeter::ff_per_um(anchor.c_gate_ff_um[i]),
        c_drain: FaradsPerMeter::ff_per_um(anchor.c_drain_ff_um[i]),
        r_eff_n: OhmMeters::ohm_um(anchor.r_eff_ohm_um[i]),
        p_to_n_ratio: 2.0,
        i_off_n: anchor.i_off[i],
        i_gate: anchor.i_gate[i],
        g_m: SiemensPerMeter::ms_per_um(anchor.g_m_ms_um[i]),
        min_width: 2.5 * feature,
        i_on_n: AmperesPerMeter::ua_per_um(anchor.i_on_ua_um[i]),
    }
}

fn blend(a: DeviceParams, b: DeviceParams, t: f64) -> DeviceParams {
    let geo = |x: f64, y: f64| geo_lerp(x, y, t);
    DeviceParams {
        vdd: a.vdd + (b.vdd - a.vdd) * t,
        vth: a.vth + (b.vth - a.vth) * t,
        l_gate: Meters::from_si(geo(a.l_gate.value(), b.l_gate.value())),
        c_gate: FaradsPerMeter::from_si(geo(a.c_gate.value(), b.c_gate.value())),
        c_drain: FaradsPerMeter::from_si(geo(a.c_drain.value(), b.c_drain.value())),
        r_eff_n: OhmMeters::from_si(geo(a.r_eff_n.value(), b.r_eff_n.value())),
        p_to_n_ratio: a.p_to_n_ratio,
        i_off_n: AmperesPerMeter::from_si(geo(a.i_off_n.value(), b.i_off_n.value())),
        i_gate: AmperesPerMeter::from_si(geo(a.i_gate.value(), b.i_gate.value())),
        g_m: SiemensPerMeter::from_si(geo(a.g_m.value(), b.g_m.value())),
        min_width: Meters::from_si(geo(a.min_width.value(), b.min_width.value())),
        i_on_n: AmperesPerMeter::from_si(geo(a.i_on_n.value(), b.i_on_n.value())),
    }
}

/// Looks up (or interpolates) the device parameters for `ty` at `node`.
pub fn device_params(node: TechNode, ty: DeviceType) -> DeviceParams {
    if let Some((hi, lo, t)) = node.interpolation() {
        let a = device_params(hi, ty);
        let b = device_params(lo, ty);
        return blend(a, b, t);
    }
    let feature = node.feature_size();
    match ty {
        DeviceType::Hp => anchor_params(&HP, node, feature),
        DeviceType::Lstp => anchor_params(&LSTP, node, feature),
        DeviceType::Lop => anchor_params(&LOP, node, feature),
        DeviceType::HpLongChannel => {
            let mut p = anchor_params(&HP, node, feature);
            p.r_eff_n *= LC_R_FACTOR;
            p.i_off_n *= LC_IOFF_FACTOR;
            p.i_gate *= LC_IGATE_FACTOR;
            p.vth += LC_VTH_SHIFT;
            p.l_gate *= LC_LGATE_FACTOR;
            p.i_on_n /= LC_R_FACTOR;
            p
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_classes_resolve_at_all_nodes() {
        for &node in TechNode::ALL_WITH_HALF_NODES {
            for &ty in DeviceType::ALL {
                let p = device_params(node, ty);
                assert!(p.vdd > Volts::from_si(0.4) && p.vdd < Volts::from_si(1.5));
                assert!(p.r_eff_n > OhmMeters::ZERO);
                assert!(p.c_gate > FaradsPerMeter::ZERO);
                assert!(p.i_off_n > AmperesPerMeter::ZERO);
                assert!(p.min_width > Meters::ZERO);
            }
        }
    }

    #[test]
    fn n78_lies_between_n90_and_n65() {
        for &ty in DeviceType::ALL {
            let p90 = device_params(TechNode::N90, ty);
            let p78 = device_params(TechNode::N78, ty);
            let p65 = device_params(TechNode::N65, ty);
            assert!(
                p78.r_eff_n < p90.r_eff_n && p78.r_eff_n > p65.r_eff_n,
                "{ty}: r_eff 78nm not bracketed"
            );
        }
    }

    #[test]
    fn width_scaling_identities() {
        let p = device_params(TechNode::N32, DeviceType::Hp);
        let w = Meters::um(1.0);
        assert!((p.cap_gate(2.0 * w) - 2.0 * p.cap_gate(w)).abs() < Farads::from_si(1e-20));
        assert!((p.res_on_n(2.0 * w) - p.res_on_n(w) / 2.0).abs() < Ohms::from_si(1e-6));
        // PMOS of p_to_n× width matches NMOS resistance.
        let wp = p.p_to_n_ratio * w;
        assert!((p.res_on_p(wp) - p.res_on_n(w)).abs() < Ohms::from_si(1e-9));
    }

    #[test]
    fn leak_power_is_linear_in_width() {
        let p = device_params(TechNode::N45, DeviceType::Lop);
        let one = p.leak_power(Meters::um(1.0));
        let three = p.leak_power(Meters::um(3.0));
        assert!((three - 3.0 * one).abs() < Watts::from_si(1e-18));
    }

    #[test]
    fn lstp_vdd_never_below_hp() {
        for &node in TechNode::ALL {
            let hp = device_params(node, DeviceType::Hp);
            let lstp = device_params(node, DeviceType::Lstp);
            let lop = device_params(node, DeviceType::Lop);
            assert!(lstp.vdd >= hp.vdd, "LSTP uses higher VDD");
            assert!(lop.vdd <= hp.vdd, "LOP uses the lowest VDD");
        }
    }
}
