//! Memory-cell technology models (paper §2.3.1, Table 1).
//!
//! Three cell technologies are supported on an equal footing, which is the
//! central enabler of the paper's SRAM-vs-DRAM tradeoff studies:
//!
//! | Characteristic        | SRAM        | LP-DRAM       | COMM-DRAM      |
//! |-----------------------|-------------|---------------|----------------|
//! | Cell area @32 nm      | 146 F²      | 30 F²         | 6 F²           |
//! | Cell device           | HP long-ch. | interm. oxide | thick oxide    |
//! | Peripheral device     | HP long-ch. | HP long-ch.   | LSTP           |
//! | Bitline               | copper      | copper        | tungsten       |
//! | Cell VDD @32 nm       | 0.9 V       | 1.0 V         | 1.0 V          |
//! | Storage cap           | —           | 20 fF         | 30 fF          |
//! | Boosted wordline V_PP | —           | 1.5 V         | 2.6 V          |
//! | Refresh period @32 nm | —           | 0.12 ms       | 64 ms          |

use crate::device::{device_params, DeviceType};
use crate::node::{geo_lerp, TechNode};
use crate::units::{Amperes, Farads, Meters, Ohms, Seconds, SquareMeters, Volts};
use crate::wire::{wire_params, WireType};
use std::fmt;

/// One of the three memory cell technologies modeled by CACTI-D.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellTechnology {
    /// 6T SRAM — the traditional on-die cache cell.
    Sram,
    /// Logic-process embedded DRAM (1T1C, intermediate-oxide access device).
    LpDram,
    /// Commodity DRAM (1T1C, thick-oxide access device, tungsten bitlines).
    CommDram,
}

impl CellTechnology {
    /// All three cell technologies.
    pub const ALL: &'static [CellTechnology] = &[
        CellTechnology::Sram,
        CellTechnology::LpDram,
        CellTechnology::CommDram,
    ];

    /// `true` for the two DRAM technologies.
    pub fn is_dram(self) -> bool {
        !matches!(self, CellTechnology::Sram)
    }

    /// Device class used for peripheral/global support circuitry (Table 1).
    pub fn peripheral_device_type(self) -> DeviceType {
        match self {
            CellTechnology::Sram | CellTechnology::LpDram => DeviceType::HpLongChannel,
            CellTechnology::CommDram => DeviceType::Lstp,
        }
    }

    /// Wire class used for the bitlines of this cell technology.
    pub fn bitline_wire_type(self) -> WireType {
        match self {
            CellTechnology::CommDram => WireType::TungstenBitline,
            _ => WireType::Local,
        }
    }
}

impl fmt::Display for CellTechnology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CellTechnology::Sram => "SRAM",
            CellTechnology::LpDram => "LP-DRAM",
            CellTechnology::CommDram => "COMM-DRAM",
        };
        f.write_str(s)
    }
}

/// Resolved electrical and geometric parameters of one memory cell
/// technology at one node, carried as typed quantities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellParams {
    /// Which technology this describes.
    pub technology: CellTechnology,
    /// Cell area in units of F².
    pub area_f2: f64,
    /// Cell width (along the wordline).
    pub width: Meters,
    /// Cell height (along the bitline).
    pub height: Meters,
    /// Cell array supply voltage.
    pub vdd_cell: Volts,
    /// Capacitance added to the bitline per cell (junction + wire).
    pub c_bitline_per_cell: Farads,
    /// Capacitance added to the wordline per cell (gate + wire).
    pub c_wordline_per_cell: Farads,
    /// Wordline resistance per cell.
    pub r_wordline_per_cell: Ohms,
    /// Bitline resistance per cell.
    pub r_bitline_per_cell: Ohms,
    /// SRAM read (bitline discharge) current; zero for DRAM.
    pub i_cell_read: Amperes,
    /// SRAM standby leakage per cell at `vdd_cell`; zero for DRAM
    /// (DRAM cell leakage shows up as the retention/refresh requirement).
    pub leak_per_cell: Amperes,
    /// DRAM storage capacitance; zero for SRAM.
    pub c_storage: Farads,
    /// DRAM boosted wordline voltage; equals `vdd_cell` for SRAM.
    pub vpp: Volts,
    /// DRAM retention (refresh) period; infinite for SRAM.
    pub retention_time: Seconds,
    /// DRAM access-transistor on-resistance; zero for SRAM.
    pub r_access_on: Ohms,
    /// Minimum bitline differential the sense amplifier needs.
    pub v_sense_margin: Volts,
    /// Maximum rows per subarray this technology supports (signal margin /
    /// wordline RC limits).
    pub max_rows_per_subarray: usize,
    /// Multiplier on bitline/sense/restore/precharge timing capturing the
    /// margining style of each technology (worst-case cells, sense offsets,
    /// temperature corners). 1.0 for SRAM; >1 for the DRAMs.
    pub timing_derate: f64,
    /// Fraction of the peripheral device's transconductance available in
    /// the (offset-compensated, conservatively biased) sense amplifier.
    pub sense_gm_derate: f64,
    /// Effective access-resistance multiplier during cell restore: the
    /// access transistor loses overdrive as the cell node approaches VDD,
    /// so the tail of the writeback is slow. 1.0 for SRAM.
    pub restore_saturation: f64,
}

impl CellParams {
    /// Cell area.
    pub fn area(&self) -> SquareMeters {
        self.width * self.height
    }

    /// For DRAM, the open-bitline charge-sharing differential available when
    /// `rows` cells load the bitline: `(V_DD/2)·C_s/(C_s + C_bl)`.
    /// Returns `None` for SRAM.
    pub fn dram_sense_signal(&self, rows: usize) -> Option<Volts> {
        if !self.technology.is_dram() {
            return None;
        }
        let c_bl = self.c_bitline_per_cell * rows as f64;
        Some(self.vdd_cell / 2.0 * self.c_storage / (self.c_storage + c_bl))
    }

    /// Largest power-of-two row count per subarray that still meets the
    /// sense margin (and the hard `max_rows_per_subarray` cap).
    pub fn max_feasible_rows(&self) -> usize {
        let mut rows = self.max_rows_per_subarray;
        while rows > 16 {
            match self.dram_sense_signal(rows) {
                Some(signal) if signal < self.v_sense_margin => rows /= 2,
                _ => break,
            }
        }
        rows
    }
}

/// Raw per-node anchor rows. Order: N90, N65, N45, N32.
struct CellAnchor {
    area_f2: [f64; 4],
    aspect_w_over_h: f64,
    vdd_cell: [f64; 4],
    c_storage_ff: [f64; 4],
    vpp: [f64; 4],
    retention_ms: [f64; 4],
    r_access_kohm: [f64; 4],
    i_cell_read_ua: [f64; 4],
    leak_per_cell_na: [f64; 4],
    junction_ff: [f64; 4],
    v_sense_mv: f64,
    max_rows: usize,
    timing_derate: f64,
    sense_gm_derate: f64,
    restore_saturation: f64,
}

const SRAM: CellAnchor = CellAnchor {
    area_f2: [146.0, 146.0, 146.0, 146.0],
    aspect_w_over_h: 1.9,
    vdd_cell: [1.2, 1.1, 1.0, 0.9],
    c_storage_ff: [0.0; 4],
    vpp: [0.0; 4],
    retention_ms: [0.0; 4],
    r_access_kohm: [0.0; 4],
    i_cell_read_ua: [71.0, 58.0, 45.0, 36.0],
    leak_per_cell_na: [40.0, 33.0, 27.0, 22.0],
    junction_ff: [0.090, 0.065, 0.045, 0.032],
    v_sense_mv: 100.0,
    max_rows: 1024,
    timing_derate: 1.0,
    sense_gm_derate: 0.5,
    restore_saturation: 1.0,
};

const LP_DRAM: CellAnchor = CellAnchor {
    area_f2: [24.0, 26.0, 28.0, 30.0],
    aspect_w_over_h: 1.2,
    vdd_cell: [1.2, 1.1, 1.0, 1.0],
    c_storage_ff: [20.0, 20.0, 20.0, 20.0],
    vpp: [1.9, 1.7, 1.6, 1.5],
    retention_ms: [1.0, 0.5, 0.25, 0.12],
    r_access_kohm: [5.5, 5.0, 4.5, 4.5],
    i_cell_read_ua: [0.0; 4],
    leak_per_cell_na: [0.0; 4],
    junction_ff: [0.060, 0.045, 0.035, 0.028],
    v_sense_mv: 75.0,
    max_rows: 512,
    timing_derate: 1.1,
    sense_gm_derate: 0.30,
    restore_saturation: 1.2,
};

const COMM_DRAM: CellAnchor = CellAnchor {
    area_f2: [8.0, 7.0, 6.0, 6.0],
    aspect_w_over_h: 0.667,
    vdd_cell: [1.8, 1.5, 1.2, 1.0],
    c_storage_ff: [30.0, 30.0, 30.0, 30.0],
    vpp: [3.4, 3.0, 2.8, 2.6],
    retention_ms: [64.0, 64.0, 64.0, 64.0],
    r_access_kohm: [24.0, 22.0, 21.0, 20.0],
    i_cell_read_ua: [0.0; 4],
    leak_per_cell_na: [0.0; 4],
    junction_ff: [0.110, 0.090, 0.075, 0.065],
    v_sense_mv: 60.0,
    max_rows: 512,
    timing_derate: 1.6,
    sense_gm_derate: 0.18,
    restore_saturation: 1.2,
};

fn node_index(node: TechNode) -> usize {
    match node {
        TechNode::N90 => 0,
        TechNode::N65 => 1,
        TechNode::N45 => 2,
        TechNode::N32 => 3,
        TechNode::N78 => unreachable!("interpolated before lookup"),
    }
}

fn anchor_cell(anchor: &CellAnchor, tech: CellTechnology, node: TechNode) -> CellParams {
    let i = node_index(node);
    let f = node.feature_size();
    let area = anchor.area_f2[i] * f * f;
    // width/height from area and aspect ratio: w = aspect·h.
    let height = (area / anchor.aspect_w_over_h).sqrt();
    let width = area / height;

    let bl_wire = wire_params(node, tech.bitline_wire_type());
    let wl_wire = wire_params(node, WireType::Wordline);
    // Access-device gate load on the wordline: SRAM has two access
    // transistors of ~1.5 F width; DRAM has one of ~1 F width. Use the
    // peripheral device's gate cap as the per-width proxy.
    let periph = device_params(node, tech.peripheral_device_type());
    let access_w = match tech {
        CellTechnology::Sram => 2.0 * 1.5 * f,
        CellTechnology::LpDram => 1.5 * f,
        CellTechnology::CommDram => 1.0 * f,
    };
    let c_wordline_per_cell = periph.c_gate * access_w + wl_wire.c_per_m * width;
    let c_bitline_per_cell = Farads::ff(anchor.junction_ff[i]) + bl_wire.c_per_m * height;

    CellParams {
        technology: tech,
        area_f2: anchor.area_f2[i],
        width,
        height,
        vdd_cell: Volts::from_si(anchor.vdd_cell[i]),
        c_bitline_per_cell,
        c_wordline_per_cell,
        r_wordline_per_cell: wl_wire.r_per_m * width,
        r_bitline_per_cell: bl_wire.r_per_m * height,
        i_cell_read: Amperes::ua(anchor.i_cell_read_ua[i]),
        leak_per_cell: Amperes::na(anchor.leak_per_cell_na[i]),
        c_storage: Farads::ff(anchor.c_storage_ff[i]),
        vpp: if tech.is_dram() {
            Volts::from_si(anchor.vpp[i])
        } else {
            Volts::from_si(anchor.vdd_cell[i])
        },
        retention_time: if tech.is_dram() {
            Seconds::ms(anchor.retention_ms[i])
        } else {
            Seconds::from_si(f64::INFINITY)
        },
        r_access_on: Ohms::kohm(anchor.r_access_kohm[i]),
        v_sense_margin: Volts::mv(anchor.v_sense_mv),
        max_rows_per_subarray: anchor.max_rows,
        timing_derate: anchor.timing_derate,
        sense_gm_derate: anchor.sense_gm_derate,
        restore_saturation: anchor.restore_saturation,
    }
}

fn blend_cells(a: CellParams, b: CellParams, t: f64) -> CellParams {
    let lin = |x: f64, y: f64| x + (y - x) * t;
    let geo = |x: f64, y: f64| geo_lerp(x, y, t);
    CellParams {
        technology: a.technology,
        area_f2: lin(a.area_f2, b.area_f2),
        width: Meters::from_si(geo(a.width.value(), b.width.value())),
        height: Meters::from_si(geo(a.height.value(), b.height.value())),
        vdd_cell: a.vdd_cell + (b.vdd_cell - a.vdd_cell) * t,
        c_bitline_per_cell: Farads::from_si(geo(
            a.c_bitline_per_cell.value(),
            b.c_bitline_per_cell.value(),
        )),
        c_wordline_per_cell: Farads::from_si(geo(
            a.c_wordline_per_cell.value(),
            b.c_wordline_per_cell.value(),
        )),
        r_wordline_per_cell: Ohms::from_si(geo(
            a.r_wordline_per_cell.value(),
            b.r_wordline_per_cell.value(),
        )),
        r_bitline_per_cell: Ohms::from_si(geo(
            a.r_bitline_per_cell.value(),
            b.r_bitline_per_cell.value(),
        )),
        i_cell_read: a.i_cell_read + (b.i_cell_read - a.i_cell_read) * t,
        leak_per_cell: a.leak_per_cell + (b.leak_per_cell - a.leak_per_cell) * t,
        c_storage: a.c_storage + (b.c_storage - a.c_storage) * t,
        vpp: a.vpp + (b.vpp - a.vpp) * t,
        // Linear interpolation is only meaningful when both endpoints are
        // finite; any non-finite endpoint (SRAM's infinite retention) makes
        // the blend infinite too. Interpolating with exactly one finite
        // endpoint used to produce inf·0 = NaN at t = 0.
        retention_time: if a.retention_time.is_finite() && b.retention_time.is_finite() {
            Seconds::from_si(lin(a.retention_time.value(), b.retention_time.value()))
        } else {
            Seconds::from_si(f64::INFINITY)
        },
        r_access_on: a.r_access_on + (b.r_access_on - a.r_access_on) * t,
        v_sense_margin: a.v_sense_margin + (b.v_sense_margin - a.v_sense_margin) * t,
        max_rows_per_subarray: a.max_rows_per_subarray,
        timing_derate: lin(a.timing_derate, b.timing_derate),
        sense_gm_derate: lin(a.sense_gm_derate, b.sense_gm_derate),
        restore_saturation: lin(a.restore_saturation, b.restore_saturation),
    }
}

/// Looks up (or interpolates) the cell parameters for `ty` at `node`.
pub fn cell_params(node: TechNode, ty: CellTechnology) -> CellParams {
    if let Some((hi, lo, t)) = node.interpolation() {
        let a = cell_params(hi, ty);
        let b = cell_params(lo, ty);
        return blend_cells(a, b, t);
    }
    match ty {
        CellTechnology::Sram => anchor_cell(&SRAM, ty, node),
        CellTechnology::LpDram => anchor_cell(&LP_DRAM, ty, node),
        CellTechnology::CommDram => anchor_cell(&COMM_DRAM, ty, node),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_at_32nm() {
        let sram = cell_params(TechNode::N32, CellTechnology::Sram);
        let lp = cell_params(TechNode::N32, CellTechnology::LpDram);
        let comm = cell_params(TechNode::N32, CellTechnology::CommDram);

        assert_eq!(sram.area_f2, 146.0);
        assert_eq!(lp.area_f2, 30.0);
        assert_eq!(comm.area_f2, 6.0);

        assert!((sram.vdd_cell - Volts::from_si(0.9)).abs() < Volts::from_si(1e-9));
        assert!((lp.vdd_cell - Volts::from_si(1.0)).abs() < Volts::from_si(1e-9));
        assert!((comm.vdd_cell - Volts::from_si(1.0)).abs() < Volts::from_si(1e-9));

        assert!((lp.c_storage - Farads::ff(20.0)).abs() < Farads::from_si(1e-18));
        assert!((comm.c_storage - Farads::ff(30.0)).abs() < Farads::from_si(1e-18));

        assert!((lp.vpp - Volts::from_si(1.5)).abs() < Volts::from_si(1e-9));
        assert!((comm.vpp - Volts::from_si(2.6)).abs() < Volts::from_si(1e-9));

        assert!((lp.retention_time - Seconds::ms(0.12)).abs() < Seconds::from_si(1e-9));
        assert!((comm.retention_time - Seconds::ms(64.0)).abs() < Seconds::from_si(1e-9));
        assert!(!sram.retention_time.is_finite());
    }

    #[test]
    fn geometry_consistent_with_area() {
        for &node in TechNode::ALL {
            for &ty in CellTechnology::ALL {
                let c = cell_params(node, ty);
                let f = node.feature_size();
                let area_from_dims = c.width * c.height;
                assert!(
                    (area_from_dims - c.area_f2 * f * f).abs() / area_from_dims < 1e-9,
                    "{ty} at {node}"
                );
            }
        }
    }

    #[test]
    fn dram_sense_signal_shrinks_with_rows() {
        let comm = cell_params(TechNode::N32, CellTechnology::CommDram);
        let s128 = comm.dram_sense_signal(128).unwrap();
        let s512 = comm.dram_sense_signal(512).unwrap();
        assert!(s128 > s512);
        // 512-cell bitline still meets margin at 32 nm.
        assert!(s512 >= comm.v_sense_margin, "{s512}");
        let sram = cell_params(TechNode::N32, CellTechnology::Sram);
        assert!(sram.dram_sense_signal(512).is_none());
    }

    #[test]
    fn max_feasible_rows_respects_margin() {
        for &node in TechNode::ALL_WITH_HALF_NODES {
            for &ty in &[CellTechnology::LpDram, CellTechnology::CommDram] {
                let c = cell_params(node, ty);
                let rows = c.max_feasible_rows();
                assert!(rows >= 16);
                assert!(
                    c.dram_sense_signal(rows).unwrap() >= c.v_sense_margin || rows == 16,
                    "{ty}@{node}: rows={rows}"
                );
            }
        }
    }

    #[test]
    fn comm_dram_bitlines_are_tungsten() {
        let comm = cell_params(TechNode::N32, CellTechnology::CommDram);
        let lp = cell_params(TechNode::N32, CellTechnology::LpDram);
        // Per-cell bitline resistance is much higher in COMM-DRAM even
        // though its cell is shorter.
        assert!(comm.r_bitline_per_cell > 2.0 * lp.r_bitline_per_cell);
    }

    #[test]
    fn sram_cells_leak_drams_do_not() {
        for &node in TechNode::ALL {
            let sram = cell_params(node, CellTechnology::Sram);
            assert!(sram.leak_per_cell > Amperes::ZERO);
            for &d in &[CellTechnology::LpDram, CellTechnology::CommDram] {
                assert_eq!(cell_params(node, d).leak_per_cell, Amperes::ZERO);
            }
        }
    }

    #[test]
    fn retention_blend_is_total() {
        // Interpolating between a finite and an infinite retention endpoint
        // must produce a well-defined (infinite) result at every t — the old
        // branch checked only one endpoint and yielded inf·0 = NaN at t = 0
        // (and bogus ±inf elsewhere) when the finite endpoint came first.
        let base = cell_params(TechNode::N90, CellTechnology::LpDram);
        let mut inf_cell = base;
        inf_cell.retention_time = Seconds::from_si(f64::INFINITY);

        for &t in &[0.0, 0.25, 0.5, 1.0] {
            // finite → infinite
            let fwd = blend_cells(base, inf_cell, t).retention_time;
            // infinite → finite
            let rev = blend_cells(inf_cell, base, t).retention_time;
            assert!(
                !fwd.value().is_nan() && !rev.value().is_nan(),
                "NaN retention at t={t}"
            );
            assert!(!fwd.is_finite(), "finite→inf blend must stay inf (t={t})");
            assert!(!rev.is_finite(), "inf→finite blend must stay inf (t={t})");
        }

        // Both endpoints finite: plain linear interpolation, always finite.
        let lp90 = cell_params(TechNode::N90, CellTechnology::LpDram);
        let lp65 = cell_params(TechNode::N65, CellTechnology::LpDram);
        let mid = blend_cells(lp90, lp65, 0.5).retention_time;
        assert!(mid.is_finite());
        assert!(mid <= lp90.retention_time && mid >= lp65.retention_time);
    }
}
