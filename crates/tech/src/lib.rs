//! Technology models for the CACTI-D reproduction.
//!
//! This crate provides the technology foundation that the rest of the
//! workspace builds on, mirroring §2.2–§2.3 of the CACTI-D paper
//! (Thoziyoor et al., ISCA 2008):
//!
//! * **Device models** ([`DeviceType`], [`DeviceParams`]) for the three ITRS
//!   device classes — High Performance (HP), Low Standby Power (LSTP) and
//!   Low Operating Power (LOP) — plus the long-channel HP variant the paper
//!   uses for SRAM cells and logic-process peripheral circuitry, and the
//!   DRAM access-transistor classes.
//! * **Wire models** ([`WireType`], [`WireParams`]) following Ron Ho-style
//!   projections for local, semi-global and global copper interconnect, and
//!   tungsten bitlines for commodity DRAM.
//! * **Memory-cell models** ([`CellTechnology`], [`CellParams`]) for 6T SRAM
//!   (146 F²), logic-process embedded DRAM (LP-DRAM, 30 F²) and commodity
//!   DRAM (COMM-DRAM, 6 F²), with storage capacitance, boosted wordline
//!   voltage (V_PP) and retention time per Table 1 of the paper.
//! * Four ITRS technology nodes: 90, 65, 45 and 32 nm ([`TechNode`]), plus
//!   the 78 nm half-node used by the paper's Micron DDR3 validation, reached
//!   by log-linear interpolation between 90 and 65 nm.
//!
//! The numeric tables are *ITRS-flavoured*: they are not copied from the
//! (no-longer-distributed) ITRS spreadsheets, but are chosen so that device
//! orderings, scaling trends and the downstream CACTI-D results reproduce
//! the paper's published numbers. See `DESIGN.md` §3 for the substitution
//! rationale.
//!
//! # Example
//!
//! ```
//! use cactid_tech::{Technology, TechNode, DeviceType, CellTechnology};
//!
//! let tech = Technology::new(TechNode::N32);
//! let hp = tech.device(DeviceType::Hp);
//! let lstp = tech.device(DeviceType::Lstp);
//! // LSTP transistors are slower but far less leaky than HP.
//! assert!(lstp.r_eff_n > hp.r_eff_n);
//! assert!(lstp.i_off_n < hp.i_off_n / 1000.0);
//!
//! let sram = tech.cell(CellTechnology::Sram);
//! let comm = tech.cell(CellTechnology::CommDram);
//! // Commodity DRAM cells are much denser than SRAM cells.
//! assert!(comm.area() < sram.area() / 10.0);
//! ```

pub mod cell;
pub mod device;
pub mod node;
pub mod units;
pub mod wire;

pub use cell::{CellParams, CellTechnology};
pub use device::{DeviceParams, DeviceType};
pub use node::TechNode;
pub use wire::{WireParams, WireType};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use units::{Meters, Seconds};

/// Count of [`Technology::new`] constructions in this process (clones are
/// not counted). Exposed through [`Technology::constructions`] so batch
/// drivers can assert that the per-node memo ([`Technology::cached`])
/// actually deduplicates construction.
static CONSTRUCTIONS: AtomicU64 = AtomicU64::new(0);

/// One memoization slot per [`TechNode`] (in `ALL_WITH_HALF_NODES` order).
static CACHED: [OnceLock<Technology>; 5] = [const { OnceLock::new() }; 5];

/// A fully-resolved technology: one ITRS node with all device, wire and
/// memory-cell parameter tables instantiated.
///
/// This is the single object the array-organization and circuit models take
/// as input; it is cheap to construct and `Copy`-free but small enough to
/// clone liberally.
#[derive(Debug, Clone, PartialEq)]
pub struct Technology {
    node: TechNode,
}

impl Technology {
    /// Creates the technology model for `node`.
    pub fn new(node: TechNode) -> Self {
        CONSTRUCTIONS.fetch_add(1, Ordering::Relaxed);
        Technology { node }
    }

    /// The per-process memoized technology model for `node`.
    ///
    /// Hot batch paths (the solver's per-spec entry point, the diagnostics
    /// context) resolve their technology through this cache so that a sweep
    /// over thousands of specs at one node constructs the model exactly
    /// once; [`Technology::constructions`] observes the deduplication.
    pub fn cached(node: TechNode) -> &'static Technology {
        let Some(slot) = TechNode::ALL_WITH_HALF_NODES
            .iter()
            .position(|&n| n == node)
        else {
            unreachable!("every TechNode is listed in ALL_WITH_HALF_NODES")
        };
        CACHED[slot].get_or_init(|| Technology::new(node))
    }

    /// Total [`Technology::new`] constructions performed by this process so
    /// far. Batch engines report the delta across a run in their stats.
    pub fn constructions() -> u64 {
        CONSTRUCTIONS.load(Ordering::Relaxed)
    }

    /// The ITRS node this technology was instantiated for.
    pub fn node(&self) -> TechNode {
        self.node
    }

    /// Feature size F (e.g. 32 nm for the 32 nm node).
    pub fn feature_size(&self) -> Meters {
        self.node.feature_size()
    }

    /// Device parameters for one of the ITRS device classes at this node.
    pub fn device(&self, ty: DeviceType) -> DeviceParams {
        device::device_params(self.node, ty)
    }

    /// Wire parameters for one of the interconnect classes at this node.
    pub fn wire(&self, ty: WireType) -> WireParams {
        wire::wire_params(self.node, ty)
    }

    /// Memory-cell parameters for one of the three cell technologies at
    /// this node.
    pub fn cell(&self, ty: CellTechnology) -> CellParams {
        cell::cell_params(self.node, ty)
    }

    /// The device class the given cell technology uses for peripheral and
    /// global support circuitry (Table 1 of the paper): long-channel HP for
    /// SRAM and LP-DRAM, LSTP for COMM-DRAM.
    pub fn peripheral_device(&self, ty: CellTechnology) -> DeviceParams {
        self.device(ty.peripheral_device_type())
    }

    /// Fan-out-of-4 inverter delay for the given device class — the
    /// canonical speed yardstick used in sanity tests and in pipeline-depth
    /// reasoning.
    pub fn fo4(&self, ty: DeviceType) -> Seconds {
        let d = self.device(ty);
        // Inverter with PMOS sized `p_to_n_ratio` wider than NMOS; input cap
        // of one unit inverter is (1 + ratio) * c_gate, self-load is
        // (1 + ratio) * c_drain, and it drives four copies of itself.
        // Width-normalized: (Ω·m)·(F/m) = s, so the widths cancel.
        let cin = (1.0 + d.p_to_n_ratio) * d.c_gate;
        let cself = (1.0 + d.p_to_n_ratio) * d.c_drain;
        0.69 * d.r_eff_n * (cself + 4.0 * cin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fo4_scales_down_with_node() {
        let nodes = [TechNode::N90, TechNode::N65, TechNode::N45, TechNode::N32];
        let fo4s: Vec<Seconds> = nodes
            .iter()
            .map(|&n| Technology::new(n).fo4(DeviceType::Hp))
            .collect();
        for pair in fo4s.windows(2) {
            assert!(pair[1] < pair[0], "FO4 must shrink with scaling: {fo4s:?}");
        }
        // Sanity band: 32 nm HP FO4 in the ~8–16 ps range.
        let fo4_32 = fo4s[3];
        assert!(
            fo4_32 > Seconds::ps(6.0) && fo4_32 < Seconds::ps(18.0),
            "FO4@32nm = {fo4_32}"
        );
    }

    #[test]
    fn device_class_orderings_match_itrs() {
        for &node in TechNode::ALL {
            let t = Technology::new(node);
            let hp = t.device(DeviceType::Hp);
            let lop = t.device(DeviceType::Lop);
            let lstp = t.device(DeviceType::Lstp);
            // Speed: HP fastest, LOP in between, LSTP slowest (paper §2.2.1).
            assert!(hp.r_eff_n < lop.r_eff_n && lop.r_eff_n < lstp.r_eff_n);
            // Leakage: reversed ordering.
            assert!(hp.i_off_n > lop.i_off_n && lop.i_off_n > lstp.i_off_n);
            // LSTP holds an almost-constant sub-nA/µm leakage (10 pA/µm at
            // 25 °C per ITRS; evaluated at operating temperature here).
            let na_per_um = lstp.i_off_n / units::AmperesPerMeter::na_per_um(1.0);
            assert!(
                (0.1..0.6).contains(&na_per_um),
                "LSTP leak {na_per_um} nA/µm"
            );
        }
    }

    #[test]
    fn cached_technology_is_shared_and_equal_to_fresh() {
        for &node in TechNode::ALL_WITH_HALF_NODES {
            let cached = Technology::cached(node);
            assert_eq!(*cached, Technology::new(node));
            // Same node resolves to the same memoized instance.
            assert!(std::ptr::eq(cached, Technology::cached(node)));
        }
        // The counter moves when `new` is called directly.
        let before = Technology::constructions();
        let _ = Technology::new(TechNode::N32);
        assert!(Technology::constructions() > before);
    }

    #[test]
    fn long_channel_trades_speed_for_leakage() {
        let t = Technology::new(TechNode::N32);
        let hp = t.device(DeviceType::Hp);
        let lc = t.device(DeviceType::HpLongChannel);
        assert!(lc.r_eff_n > hp.r_eff_n);
        assert!(lc.i_off_n < hp.i_off_n / 2.0);
    }

    #[test]
    fn peripheral_device_assignment_follows_table1() {
        let t = Technology::new(TechNode::N32);
        assert_eq!(
            CellTechnology::Sram.peripheral_device_type(),
            DeviceType::HpLongChannel
        );
        assert_eq!(
            CellTechnology::LpDram.peripheral_device_type(),
            DeviceType::HpLongChannel
        );
        assert_eq!(
            CellTechnology::CommDram.peripheral_device_type(),
            DeviceType::Lstp
        );
        // And the resolved parameters differ accordingly.
        let sram_p = t.peripheral_device(CellTechnology::Sram);
        let comm_p = t.peripheral_device(CellTechnology::CommDram);
        assert!(comm_p.r_eff_n > sram_p.r_eff_n);
    }
}
