//! Unit helpers.
//!
//! The whole workspace uses **SI base units** internally: seconds, meters,
//! farads, ohms, volts, amperes, watts, joules. These constants make the
//! parameter tables readable (`1.0 * FF_PER_UM` instead of `1e-9`) and the
//! pretty-printers consistent.

/// One nanometer in meters.
pub const NM: f64 = 1e-9;
/// One micrometer in meters.
pub const UM: f64 = 1e-6;
/// One millimeter in meters.
pub const MM: f64 = 1e-3;

/// One picosecond in seconds.
pub const PS: f64 = 1e-12;
/// One nanosecond in seconds.
pub const NS: f64 = 1e-9;
/// One millisecond in seconds.
pub const MS: f64 = 1e-3;

/// One femtofarad in farads.
pub const FF: f64 = 1e-15;
/// One picofarad in farads.
pub const PF: f64 = 1e-12;

/// One femtojoule in joules.
pub const FJ: f64 = 1e-15;
/// One picojoule in joules.
pub const PJ: f64 = 1e-12;
/// One nanojoule in joules.
pub const NJ: f64 = 1e-9;

/// One milliwatt in watts.
pub const MW: f64 = 1e-3;
/// One microwatt in watts.
pub const UW: f64 = 1e-6;

/// Capacitance per width: 1 fF/µm expressed in F/m.
pub const FF_PER_UM: f64 = FF / UM;
/// Resistance–width product: 1 Ω·µm expressed in Ω·m.
pub const OHM_UM: f64 = UM;
/// Current per width: 1 µA/µm expressed in A/m (which is numerically 1.0).
pub const UA_PER_UM: f64 = 1e-6 / UM;
/// Current per width: 1 nA/µm expressed in A/m.
pub const NA_PER_UM: f64 = 1e-9 / UM;
/// Current per width: 1 pA/µm expressed in A/m.
pub const PA_PER_UM: f64 = 1e-12 / UM;
/// Wire resistance: 1 Ω/µm expressed in Ω/m.
pub const OHM_PER_UM: f64 = 1.0 / UM;
/// Wire capacitance: 1 fF/µm of length expressed in F/m.
pub const C_FF_PER_UM: f64 = FF / UM;

/// One square millimeter in m².
pub const MM2: f64 = MM * MM;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_identities() {
        assert_eq!(1.0 * UA_PER_UM, 1.0); // 1 µA/µm == 1 A/m
        assert!((FF_PER_UM - 1e-9).abs() < 1e-24);
        assert!((OHM_PER_UM - 1e6).abs() < 1e-6);
        assert_eq!(MM2, 1e-6);
    }
}
