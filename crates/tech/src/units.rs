//! Unit helpers — re-exported from [`cactid_units`].
//!
//! The whole workspace uses **SI base units** internally, carried in the
//! zero-cost typed quantities of the `cactid-units` crate: [`Seconds`],
//! [`Meters`], [`Farads`], [`Ohms`], [`Volts`], [`Amperes`], [`Joules`],
//! [`Watts`] and the per-width/per-length hybrids the device tables need.
//!
//! The bare multiplier constants that used to live here (`NS`, `FF_PER_UM`,
//! …) are now `const fn` constructors on the quantity types — write
//! `Seconds::ps(1.0)` instead of `1.0 * PS`, and divide by a unit quantity
//! (`t / Seconds::ns(1.0)`) to read a value back out in engineering units.

pub use cactid_units::*;
