//! Interconnect models following Ron Ho-style projections (paper §2.2).
//!
//! Three copper back-end-of-line wire classes (local, semi-global, global)
//! are modeled for every node, plus the two DRAM-specific array wires:
//! tungsten bitlines (commodity DRAM) and strapped wordlines. Resistance is
//! computed from geometry (`ρ_eff / (w·t)`) with a size-dependent effective
//! resistivity capturing barrier/scattering effects in narrow wires;
//! capacitance per length is nearly constant across nodes, as Ho's data
//! shows.

use crate::node::TechNode;
use crate::units::{Farads, FaradsPerMeter, Meters, OhmMeters, Ohms, OhmsPerMeter, Seconds};
use std::fmt;

/// An interconnect class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireType {
    /// Minimum-pitch local copper wiring (intra-mat routing, SRAM bitlines).
    Local,
    /// Semi-global (intermediate) copper wiring — H-trees inside a bank.
    SemiGlobal,
    /// Global copper wiring — bank-to-bank and chip-level routes.
    Global,
    /// Tungsten bitline used in commodity DRAM arrays (Table 1).
    TungstenBitline,
    /// Strapped (silicided poly + metal shunt) DRAM/SRAM wordline.
    Wordline,
}

impl WireType {
    /// All modeled wire classes.
    pub const ALL: &'static [WireType] = &[
        WireType::Local,
        WireType::SemiGlobal,
        WireType::Global,
        WireType::TungstenBitline,
        WireType::Wordline,
    ];
}

impl fmt::Display for WireType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WireType::Local => "local",
            WireType::SemiGlobal => "semi-global",
            WireType::Global => "global",
            WireType::TungstenBitline => "tungsten bitline",
            WireType::Wordline => "wordline",
        };
        f.write_str(s)
    }
}

/// Distributed-RC parameters of one wire class at one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireParams {
    /// Resistance per length.
    pub r_per_m: OhmsPerMeter,
    /// Capacitance per length.
    pub c_per_m: FaradsPerMeter,
    /// Wire pitch (width + spacing).
    pub pitch: Meters,
    /// Wire width.
    pub width: Meters,
    /// Wire thickness.
    pub thickness: Meters,
}

impl WireParams {
    /// Elmore delay of an unrepeated wire of length `len`, `0.38·R·C·L²`.
    pub fn elmore_delay(&self, len: Meters) -> Seconds {
        // Dimensionally (Ω/m)·(F/m)·m² = s, but the intermediate Ω·F/m²
        // product has no named type; computed raw with the historic
        // left-to-right association.
        Seconds::from_si(
            0.38 * self.r_per_m.value() * self.c_per_m.value() * len.value() * len.value(),
        )
    }

    /// Total resistance of a wire of length `len`.
    pub fn res(&self, len: Meters) -> Ohms {
        self.r_per_m * len
    }

    /// Total capacitance of a wire of length `len`.
    pub fn cap(&self, len: Meters) -> Farads {
        self.c_per_m * len
    }
}

/// Effective resistivity including barrier and surface scattering — grows as
/// wires narrow.
fn effective_resistivity(width: Meters, bulk: OhmMeters) -> OhmMeters {
    // Simple Ho-style fit: ~+50 % at 40 nm width relative to bulk.
    let scatter = 1.0 + Meters::from_si(20e-9) / width;
    bulk * scatter
}

const RHO_CU: OhmMeters = OhmMeters::from_si(2.2e-8);
const RHO_W: OhmMeters = OhmMeters::from_si(7.0e-8);
// Silicided-poly + metal strap composite, expressed as an equivalent
// resistivity over the strap cross-section.
const RHO_WL_STRAP: OhmMeters = OhmMeters::from_si(5.0e-8);

/// Looks up (or derives) the wire parameters for `ty` at `node`.
pub fn wire_params(node: TechNode, ty: WireType) -> WireParams {
    let f = node.feature_size();
    let (pitch_f, aspect, rho, c_ff_um) = match ty {
        WireType::Local => (2.5, 1.8, RHO_CU, 0.16),
        WireType::SemiGlobal => (4.0, 2.0, RHO_CU, 0.20),
        WireType::Global => (8.0, 2.2, RHO_CU, 0.21),
        WireType::TungstenBitline => (2.0, 1.5, RHO_W, 0.14),
        WireType::Wordline => (2.0, 1.2, RHO_WL_STRAP, 0.15),
    };
    let pitch = pitch_f * f;
    let width = pitch / 2.0;
    let thickness = aspect * width;
    let r_per_m = effective_resistivity(width, rho) / (width * thickness);
    WireParams {
        r_per_m,
        c_per_m: FaradsPerMeter::ff_per_um(c_ff_um),
        pitch,
        width,
        thickness,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resistance_orderings() {
        for &node in TechNode::ALL_WITH_HALF_NODES {
            let local = wire_params(node, WireType::Local);
            let semi = wire_params(node, WireType::SemiGlobal);
            let global = wire_params(node, WireType::Global);
            let bl = wire_params(node, WireType::TungstenBitline);
            assert!(local.r_per_m > semi.r_per_m);
            assert!(semi.r_per_m > global.r_per_m);
            // Tungsten bitlines are by far the most resistive.
            assert!(bl.r_per_m > local.r_per_m);
        }
    }

    #[test]
    fn wires_get_more_resistive_as_nodes_shrink() {
        let mut prev = OhmsPerMeter::ZERO;
        for &node in TechNode::ALL {
            let r = wire_params(node, WireType::SemiGlobal).r_per_m;
            assert!(r > prev, "semi-global R/m must grow with scaling");
            prev = r;
        }
    }

    #[test]
    fn sane_absolute_values_at_32nm() {
        let semi = wire_params(TechNode::N32, WireType::SemiGlobal);
        let r_ohm_um = semi.r_per_m / OhmsPerMeter::ohm_per_um(1.0);
        // Semi-global at 32 nm: a few Ω/µm.
        assert!((1.0..15.0).contains(&r_ohm_um), "R = {r_ohm_um} Ω/µm");
        let c_ff_um = semi.c_per_m / FaradsPerMeter::ff_per_um(1.0);
        assert!((0.1..0.3).contains(&c_ff_um));
    }

    #[test]
    fn elmore_delay_is_quadratic_in_length() {
        let w = wire_params(TechNode::N45, WireType::Global);
        let d1 = w.elmore_delay(Meters::mm(1.0));
        let d2 = w.elmore_delay(Meters::mm(2.0));
        assert!((d2 / d1 - 4.0).abs() < 1e-9);
    }
}
