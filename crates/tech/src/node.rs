//! ITRS technology nodes covered by the model.

use crate::units::Meters;
use std::fmt;

/// An ITRS technology node.
///
/// CACTI-D ships technology data for the four ITRS nodes spanning 2004–2013
/// (paper §2.2). The paper's DRAM validation additionally uses a 78 nm
/// commodity-DRAM process (the Micron 1 Gb DDR3-1066 device); we expose that
/// as [`TechNode::N78`], with parameters log-interpolated between the 90 and
/// 65 nm anchors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TechNode {
    /// 90 nm (ITRS year 2004).
    N90,
    /// 78 nm half-node used by the paper's Micron DDR3 validation.
    N78,
    /// 65 nm (ITRS year 2007).
    N65,
    /// 45 nm (ITRS year 2010).
    N45,
    /// 32 nm (ITRS year 2013).
    N32,
}

impl TechNode {
    /// The four primary ITRS anchor nodes (excludes the interpolated 78 nm).
    pub const ALL: &'static [TechNode] =
        &[TechNode::N90, TechNode::N65, TechNode::N45, TechNode::N32];

    /// Every node the model accepts, including the 78 nm half-node.
    pub const ALL_WITH_HALF_NODES: &'static [TechNode] = &[
        TechNode::N90,
        TechNode::N78,
        TechNode::N65,
        TechNode::N45,
        TechNode::N32,
    ];

    /// Feature size F.
    pub fn feature_size(self) -> Meters {
        Meters::nm(self.feature_nm())
    }

    /// Feature size in nanometers.
    pub fn feature_nm(self) -> f64 {
        match self {
            TechNode::N90 => 90.0,
            TechNode::N78 => 78.0,
            TechNode::N65 => 65.0,
            TechNode::N45 => 45.0,
            TechNode::N32 => 32.0,
        }
    }

    /// The ITRS calendar year this node corresponds to (paper §2.2 maps the
    /// four nodes to years 2004–2013).
    pub fn itrs_year(self) -> u32 {
        match self {
            TechNode::N90 => 2004,
            TechNode::N78 => 2006,
            TechNode::N65 => 2007,
            TechNode::N45 => 2010,
            TechNode::N32 => 2013,
        }
    }

    /// For an interpolated half-node, the pair of anchor nodes bracketing it
    /// plus the interpolation fraction in log-feature-size space; `None` for
    /// anchor nodes.
    pub(crate) fn interpolation(self) -> Option<(TechNode, TechNode, f64)> {
        match self {
            TechNode::N78 => {
                let lo = 65.0f64;
                let hi = 90.0f64;
                // Fraction of the way from 90 nm down to 65 nm in log space.
                let t = (hi.ln() - 78.0f64.ln()) / (hi.ln() - lo.ln());
                Some((TechNode::N90, TechNode::N65, t))
            }
            _ => None,
        }
    }

    /// Parses `"90"`, `"65"`, `"45"`, `"32"` or `"78"` (nm) into a node.
    pub fn from_nm(nm: u32) -> Option<TechNode> {
        match nm {
            90 => Some(TechNode::N90),
            78 => Some(TechNode::N78),
            65 => Some(TechNode::N65),
            45 => Some(TechNode::N45),
            32 => Some(TechNode::N32),
            _ => None,
        }
    }
}

impl fmt::Display for TechNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}nm", self.feature_nm())
    }
}

/// Log-space interpolation helper used by the parameter tables: geometric
/// interpolation suits quantities that scale multiplicatively across nodes
/// (resistances, currents, capacitances).
pub(crate) fn geo_lerp(a: f64, b: f64, t: f64) -> f64 {
    if a <= 0.0 || b <= 0.0 {
        // Fall back to linear for zero/negative entries (e.g. optional caps).
        return a + (b - a) * t;
    }
    (a.ln() + (b.ln() - a.ln()) * t).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_sizes() {
        assert_eq!(TechNode::N32.feature_size(), Meters::from_si(32e-9));
        assert_eq!(TechNode::N90.feature_nm(), 90.0);
        assert_eq!(TechNode::from_nm(45), Some(TechNode::N45));
        assert_eq!(TechNode::from_nm(40), None);
    }

    #[test]
    fn n78_interpolation_fraction_is_sane() {
        let (hi, lo, t) = TechNode::N78.interpolation().unwrap();
        assert_eq!(hi, TechNode::N90);
        assert_eq!(lo, TechNode::N65);
        assert!(t > 0.0 && t < 1.0, "t = {t}");
        // 78 nm sits a bit less than halfway from 90 to 65 in log space.
        assert!((0.3..0.6).contains(&t));
    }

    #[test]
    fn geo_lerp_endpoints_and_midpoint() {
        assert!((geo_lerp(1.0, 4.0, 0.0) - 1.0).abs() < 1e-12);
        assert!((geo_lerp(1.0, 4.0, 1.0) - 4.0).abs() < 1e-12);
        assert!((geo_lerp(1.0, 4.0, 0.5) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(TechNode::N32.to_string(), "32nm");
    }
}
