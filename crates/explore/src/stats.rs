//! Aggregate counters and timing for one engine run.

use std::time::Duration;

/// What one [`crate::explore`] run did, stage by stage.
///
/// The point-accounting invariant is
/// `solved + memoized + resumed + audit_skipped + invalid == points`:
/// every grid point is either solved fresh, served from the in-run memo
/// (a duplicate spec), restored from a checkpoint, statically proven
/// infeasible by the audit screen, or structurally invalid — the five
/// buckets are disjoint, so an invalid point restored from a checkpoint
/// counts under `invalid`, not `resumed`. The `ok` / `infeasible` split
/// then classifies the non-invalid points by whether a winner existed
/// (audit-skipped points always land under `infeasible`).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineStats {
    /// Total grid points in the expansion.
    pub points: usize,
    /// Distinct spec fingerprints among the valid, non-resumed points.
    pub unique_specs: usize,
    /// Points solved fresh this run (one per unique spec actually run).
    pub solved: usize,
    /// Points served from the memo — duplicate specs solved once.
    pub memoized: usize,
    /// Valid points restored from the checkpoint without re-solving
    /// (restored invalid points count under `invalid` instead).
    pub resumed: usize,
    /// Points retired by the static audit screen without calling the
    /// solver ([`crate::ExploreConfig::audit`]).
    pub audit_skipped: usize,
    /// Points whose axis combination failed spec validation, whether
    /// rendered fresh this run or restored from the checkpoint.
    pub invalid: usize,
    /// Points with a winning solution.
    pub ok: usize,
    /// Valid points the solver found no winner for.
    pub infeasible: usize,
    /// Organizations enumerated across all fresh solves.
    pub orgs_enumerated: usize,
    /// Candidates the pre-screen bounds pruned across all fresh solves.
    pub bound_pruned: usize,
    /// Candidates the lint engine rejected across all fresh solves.
    pub lint_rejected: usize,
    /// [`cactid_tech::Technology`] constructions observed during the run
    /// (the per-node memo should hold this at one per distinct node).
    pub tech_constructions: u64,
    /// Pareto-frontier size (0 when extraction was not requested).
    pub pareto_points: usize,
    /// `ok` points excluded from Pareto extraction because an objective was
    /// NaN or infinite (0 when extraction was not requested). The CD0021 /
    /// CD0022 lints flag the underlying solutions individually.
    pub non_finite: usize,
    /// Wall time spent expanding the grid.
    pub expand: Duration,
    /// Wall time spent in the solve stage (pool running).
    pub solve: Duration,
    /// Wall time spent extracting the frontier and writing output.
    pub finalize: Duration,
}

impl EngineStats {
    /// Checks the point-accounting invariant.
    pub fn balanced(&self) -> bool {
        self.solved + self.memoized + self.resumed + self.audit_skipped + self.invalid
            == self.points
            && self.ok + self.infeasible + self.invalid == self.points
    }

    /// Renders the stats as the multi-line human summary the CLI prints.
    pub fn render(&self) -> String {
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        format!(
            "cactid-explore: {} points ({} unique specs)\n  \
             solved {}, memoized {}, resumed {}, audit-skipped {}, invalid {}\n  \
             status: {} ok, {} infeasible\n  \
             orgs enumerated {}, bound-pruned {}, lint-rejected {}, tech constructions {}\n  \
             pareto frontier: {} points{}\n  \
             timing: expand {:.1} ms, solve {:.1} ms, finalize {:.1} ms",
            self.points,
            self.unique_specs,
            self.solved,
            self.memoized,
            self.resumed,
            self.audit_skipped,
            self.invalid,
            self.ok,
            self.infeasible,
            self.orgs_enumerated,
            self.bound_pruned,
            self.lint_rejected,
            self.tech_constructions,
            self.pareto_points,
            if self.non_finite > 0 {
                format!(
                    " ({} non-finite excluded; see lints CD0021/CD0022)",
                    self.non_finite
                )
            } else {
                String::new()
            },
            ms(self.expand),
            ms(self.solve),
            ms(self.finalize),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_checks_both_partitions() {
        let mut s = EngineStats {
            points: 10,
            solved: 6,
            memoized: 2,
            resumed: 1,
            invalid: 1,
            ok: 8,
            infeasible: 1,
            ..EngineStats::default()
        };
        assert!(s.balanced());
        s.ok = 9;
        assert!(!s.balanced());
    }

    #[test]
    fn audit_skipped_points_count_in_the_claim_partition() {
        let s = EngineStats {
            points: 10,
            solved: 4,
            memoized: 1,
            audit_skipped: 4,
            invalid: 1,
            ok: 5,
            infeasible: 4,
            ..EngineStats::default()
        };
        assert!(s.balanced());
        assert!(s.render().contains("audit-skipped 4"));
    }

    #[test]
    fn render_carries_the_resume_smoke_marker() {
        // ci.sh greps for "solved 0," to prove a resumed run re-solved
        // nothing; keep the substring stable.
        let s = EngineStats {
            points: 4,
            resumed: 4,
            ok: 4,
            ..EngineStats::default()
        };
        assert!(s.render().contains("solved 0,"));
        assert!(s.render().contains("resumed 4"));
    }

    #[test]
    fn render_surfaces_non_finite_exclusions() {
        let clean = EngineStats {
            points: 2,
            solved: 2,
            ok: 2,
            pareto_points: 2,
            ..EngineStats::default()
        };
        assert!(!clean.render().contains("non-finite"));
        let tainted = EngineStats {
            non_finite: 1,
            ..clean
        };
        let r = tainted.render();
        assert!(r.contains("1 non-finite excluded"));
        assert!(r.contains("CD0021/CD0022"), "points at the lint codes");
    }
}
