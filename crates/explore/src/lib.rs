//! # cactid-explore — batch design-space exploration for CACTI-D
//!
//! The paper's whole point (§2.4, §3) is sweeping array organizations and
//! memory configurations to pick designs. This crate turns the one-spec
//! [`cactid_core::optimize`] path into a production batch engine:
//!
//! * **[`Grid`]** — a declarative grid over capacity, block size,
//!   associativity, banks, technology node, cell technology and named
//!   optimization-knob variants, expanded in a fixed deterministic order
//!   into [`GridPoint`]s.
//! * **[`mod@pool`]** — a hermetic `std::thread` pool: workers claim points
//!   off an atomic cursor (no registry dependencies, in line with the
//!   workspace's zero-dependency policy).
//! * **[`mod@cache`]** — a process-wide solve memo keyed by a canonical
//!   FNV-1a fingerprint of the spec ([`mod@hash`]), so duplicate and
//!   overlapping grid points are solved once; the underlying
//!   [`cactid_tech::Technology`] tables are likewise constructed once per
//!   node ([`cactid_tech::Technology::cached`]).
//! * **[`explore`]** — the engine: streams one JSONL record per point as it
//!   completes, appends a checkpoint line (so an interrupted sweep resumes
//!   without re-solving completed points), and finalizes a
//!   thread-count-independent, Pareto-annotated JSONL file in point order.
//! * **[`mod@pareto`]** — frontier extraction over (access time, dynamic
//!   read energy, area, leakage + refresh power) with dominated-point
//!   counts.
//! * **[`mod@audit`]** — whole-grid static feasibility analysis: every
//!   point classified (`invalid` / `infeasible` / `maybe-feasible`)
//!   *before* any solve, with a per-rule infeasibility histogram; the
//!   engine's `audit` switch uses the same screen to skip
//!   statically-doomed points without changing a byte of the output.
//! * **[`EngineStats`]** — points solved / memoized / resumed / failed,
//!   organizations enumerated, lint rejections, technology constructions,
//!   and wall/CPU time per stage.
//!
//! # Quickstart
//!
//! ```
//! use cactid_explore::{explore, ExploreConfig, Grid};
//!
//! # fn main() -> Result<(), cactid_explore::ExploreError> {
//! let mut grid = Grid::new();
//! grid.capacities = vec![64 << 10, 128 << 10];
//! grid.associativities = vec![4, 8];
//! let config = ExploreConfig { pareto: true, ..ExploreConfig::default() };
//! let report = explore(&grid, &config)?;
//! assert_eq!(report.lines.len(), 4);
//! assert!(!report.frontier.is_empty());
//! println!("{}", report.stats.render());
//! # Ok(())
//! # }
//! ```

pub mod audit;
pub mod cache;
mod engine;
mod error;
pub mod grid;
pub mod hash;
pub mod json;
pub mod pareto;
pub mod pool;
pub mod record;
pub mod resume;
mod stats;

pub use audit::{audit, AuditReport, AuditVerdict, PointAudit};
pub use cache::{optimize_cached_in, SolveCache};
pub use engine::{explore, ExploreConfig, ExploreReport, PointStatus};
pub use error::ExploreError;
pub use grid::{Grid, GridPoint, OptVariant};
pub use pareto::{ParetoMetrics, ParetoPoint};
pub use stats::EngineStats;
