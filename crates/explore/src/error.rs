//! Error type of the exploration engine.

use std::error::Error;
use std::fmt;

/// Errors returned by grid expansion and the exploration engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExploreError {
    /// A grid axis has no values.
    EmptyAxis(&'static str),
    /// The grid expands to more points than the engine is willing to queue.
    TooManyPoints {
        /// Number of points the grid expands to.
        points: usize,
        /// The engine's ceiling.
        max: usize,
    },
    /// A filesystem operation on the output or checkpoint failed; the
    /// message names the path and the OS error.
    Io(String),
    /// The checkpoint on disk does not belong to this grid (the grid
    /// definition changed since the interrupted run), or it is corrupt.
    Checkpoint(String),
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::EmptyAxis(axis) => {
                write!(f, "grid axis {axis:?} has no values")
            }
            ExploreError::TooManyPoints { points, max } => {
                write!(f, "grid expands to {points} points (engine cap {max})")
            }
            ExploreError::Io(msg) => write!(f, "explore i/o error: {msg}"),
            ExploreError::Checkpoint(msg) => write!(f, "checkpoint mismatch: {msg}"),
        }
    }
}

impl Error for ExploreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_problem() {
        assert!(ExploreError::EmptyAxis("capacities")
            .to_string()
            .contains("capacities"));
        let e = ExploreError::TooManyPoints {
            points: 2_000_000,
            max: 1_048_576,
        };
        assert!(e.to_string().contains("2000000"));
        assert!(ExploreError::Checkpoint("grid changed".into())
            .to_string()
            .contains("grid changed"));
    }
}
