//! Canonical FNV-1a fingerprints of memory specifications.
//!
//! The solve memo ([`crate::cache`]) and the checkpoint format key on a
//! stable 64-bit fingerprint of the full [`MemorySpec`]. FNV-1a is used
//! because it is tiny, dependency-free and byte-order-explicit: every field
//! is serialized little-endian into the hash in a fixed order, so the
//! fingerprint is identical across runs, thread counts and platforms.

use cactid_core::{AccessMode, MemoryKind, MemorySpec, OptimizationOptions};
use cactid_tech::CellTechnology;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64-bit hasher.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

impl Fnv1a {
    /// Starts a hash at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    /// Feeds a `u32`, little-endian.
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds a `u64`, little-endian.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds an `f64` by its IEEE-754 bit pattern, little-endian.
    pub fn write_f64(&mut self, v: f64) {
        self.write(&v.to_bits().to_le_bytes());
    }

    /// Finishes the hash.
    pub fn finish(self) -> u64 {
        self.0
    }
}

/// Hashes one byte slice in one call.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

fn cell_code(cell: CellTechnology) -> u8 {
    match cell {
        CellTechnology::Sram => 0,
        CellTechnology::LpDram => 1,
        CellTechnology::CommDram => 2,
    }
}

fn access_mode_code(mode: AccessMode) -> u8 {
    match mode {
        AccessMode::Normal => 0,
        AccessMode::Sequential => 1,
        AccessMode::Fast => 2,
    }
}

fn write_opt(h: &mut Fnv1a, opt: &OptimizationOptions) {
    h.write_f64(opt.max_area_overhead);
    h.write_f64(opt.max_access_time_overhead);
    h.write_f64(opt.weight_dynamic);
    h.write_f64(opt.weight_leakage);
    h.write_f64(opt.weight_cycle);
    h.write_f64(opt.weight_interleave);
    h.write_f64(opt.repeater_relax);
    h.write_u8(u8::from(opt.sleep_transistors));
}

/// The canonical fingerprint of a full [`MemorySpec`], covering every field
/// that influences the solve (capacity, geometry, kind, cell, node, address
/// bits and all optimization knobs).
///
/// Two specs compare equal iff their fingerprints were fed identical bytes,
/// so equal specs always collide; the memo additionally verifies spec
/// equality on lookup, making accidental 64-bit collisions harmless.
pub fn spec_fingerprint(spec: &MemorySpec) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(spec.capacity_bytes);
    h.write_u32(spec.block_bytes);
    h.write_u32(spec.associativity);
    h.write_u32(spec.n_banks);
    match spec.kind {
        MemoryKind::Cache { access_mode } => {
            h.write_u8(0);
            h.write_u8(access_mode_code(access_mode));
        }
        MemoryKind::Ram => h.write_u8(1),
        MemoryKind::MainMemory {
            io_bits,
            burst_length,
            prefetch,
            page_bits,
        } => {
            h.write_u8(2);
            h.write_u32(io_bits);
            h.write_u32(burst_length);
            h.write_u32(prefetch);
            h.write_u64(page_bits);
        }
    }
    h.write_u8(cell_code(spec.cell_tech));
    h.write_u32(spec.node.feature_nm() as u32);
    h.write_u32(spec.address_bits);
    write_opt(&mut h, &spec.opt);
    h.finish()
}

/// An **injective** single-line canonical encoding of a full
/// [`MemorySpec`], covering exactly the fields [`spec_fingerprint`]
/// hashes, in the same order.
///
/// Where the fingerprint compresses to 64 bits, this string loses
/// nothing: integers render in decimal, floats as their IEEE-754 bit
/// pattern in hex (so `0.0` and `-0.0`, or two knobs differing in the
/// last ulp, stay distinct), and the kind tag prefixes its own fields.
/// Two specs are equal **iff** their canonical strings are equal, which
/// is what makes the string usable as a collision guard: a
/// content-addressed store keyed by the 64-bit fingerprint compares
/// canonical strings on lookup, so a fingerprint collision degrades to a
/// miss instead of a wrong answer — the same discipline as
/// [`crate::cache::SolveCache`]'s full-spec equality check.
///
/// The encoding never contains tabs or newlines, so it embeds safely in
/// line- and TSV-oriented storage formats.
pub fn spec_canon(spec: &MemorySpec) -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(192);
    let _ = write!(
        s,
        "cap={};blk={};asc={};bnk={}",
        spec.capacity_bytes, spec.block_bytes, spec.associativity, spec.n_banks
    );
    match spec.kind {
        MemoryKind::Cache { access_mode } => {
            let _ = write!(s, ";kind=cache:{}", access_mode_code(access_mode));
        }
        MemoryKind::Ram => s.push_str(";kind=ram"),
        MemoryKind::MainMemory {
            io_bits,
            burst_length,
            prefetch,
            page_bits,
        } => {
            let _ = write!(
                s,
                ";kind=mm:{io_bits}:{burst_length}:{prefetch}:{page_bits}"
            );
        }
    }
    let _ = write!(
        s,
        ";cell={};node={};adr={};opt=",
        cell_code(spec.cell_tech),
        spec.node.feature_nm() as u32,
        spec.address_bits
    );
    for v in [
        spec.opt.max_area_overhead,
        spec.opt.max_access_time_overhead,
        spec.opt.weight_dynamic,
        spec.opt.weight_leakage,
        spec.opt.weight_cycle,
        spec.opt.weight_interleave,
        spec.opt.repeater_relax,
    ] {
        let _ = write!(s, "{:016x}.", v.to_bits());
    }
    let _ = write!(s, "{}", u8::from(spec.opt.sleep_transistors));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use cactid_tech::TechNode;

    fn spec(capacity: u64, assoc: u32) -> MemorySpec {
        MemorySpec::builder()
            .capacity_bytes(capacity)
            .block_bytes(64)
            .associativity(assoc)
            .banks(1)
            .cell_tech(CellTechnology::Sram)
            .node(TechNode::N32)
            .kind(MemoryKind::Cache {
                access_mode: AccessMode::Normal,
            })
            .build()
            .unwrap()
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn equal_specs_have_equal_fingerprints() {
        assert_eq!(
            spec_fingerprint(&spec(1 << 20, 8)),
            spec_fingerprint(&spec(1 << 20, 8))
        );
    }

    #[test]
    fn canon_is_injective_over_perturbed_specs() {
        let base = spec_canon(&spec(1 << 20, 8));
        assert_eq!(base, spec_canon(&spec(1 << 20, 8)), "equal specs agree");
        assert_ne!(base, spec_canon(&spec(2 << 20, 8)));
        assert_ne!(base, spec_canon(&spec(1 << 20, 4)));
        let mut knobs = spec(1 << 20, 8);
        knobs.opt.weight_dynamic = f64::from_bits(knobs.opt.weight_dynamic.to_bits() + 1);
        assert_ne!(base, spec_canon(&knobs), "one-ulp knob change is visible");
        let mut zero = spec(1 << 20, 8);
        zero.opt.weight_cycle = 0.0;
        let mut neg_zero = spec(1 << 20, 8);
        neg_zero.opt.weight_cycle = -0.0;
        assert_ne!(
            spec_canon(&zero),
            spec_canon(&neg_zero),
            "bit-level float encoding"
        );
        let mut node = spec(1 << 20, 8);
        node.node = TechNode::N45;
        assert_ne!(base, spec_canon(&node));
    }

    #[test]
    fn canon_is_line_and_tsv_safe() {
        let mut mm = spec(1 << 30, 1);
        mm.kind = MemoryKind::MainMemory {
            io_bits: 8,
            burst_length: 8,
            prefetch: 8,
            page_bits: 8 << 10,
        };
        for s in [spec_canon(&spec(1 << 20, 8)), spec_canon(&mm)] {
            assert!(!s.contains('\t') && !s.contains('\n'), "{s:?}");
            assert!(!s.is_empty());
        }
        assert!(spec_canon(&mm).contains("kind=mm:8:8:8:8192"));
    }

    #[test]
    fn every_axis_perturbs_the_fingerprint() {
        let base = spec_fingerprint(&spec(1 << 20, 8));
        assert_ne!(base, spec_fingerprint(&spec(2 << 20, 8)));
        assert_ne!(base, spec_fingerprint(&spec(1 << 20, 4)));
        let mut knobs = spec(1 << 20, 8);
        knobs.opt.weight_dynamic += 0.5;
        assert_ne!(base, spec_fingerprint(&knobs));
        let mut node = spec(1 << 20, 8);
        node.node = TechNode::N45;
        assert_ne!(base, spec_fingerprint(&node));
    }
}
