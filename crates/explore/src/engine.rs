//! The exploration engine: grid in, Pareto-annotated JSONL out.
//!
//! A run proceeds in three stages:
//!
//! 1. **Expand** — the grid becomes an indexed point list plus a definition
//!    fingerprint ([`crate::grid`]).
//! 2. **Solve** — completed points are restored from the checkpoint
//!    sidecars ([`crate::resume`]); the remaining valid points are grouped
//!    by spec fingerprint so duplicates cost one solve, and the groups are
//!    drained by the work-claiming pool ([`crate::pool`]). Every finished
//!    point streams to the sidecars immediately, so an interrupt loses at
//!    most the points in flight.
//! 3. **Finalize** — the Pareto frontier is extracted ([`crate::pareto`]),
//!    `ok` records are annotated, and the final JSONL is written sorted by
//!    point index via a temp-file rename.
//!
//! Records contain no timing or host data and floats render
//! shortest-round-trip, so the final file is **byte-identical** for a given
//! grid regardless of thread count, completion order, or how many times the
//! run was interrupted and resumed.

use crate::cache::SolveCache;
use crate::error::ExploreError;
use crate::grid::Grid;
use crate::pareto::{frontier, ParetoMetrics, ParetoPoint};
use crate::pool;
use crate::record;
pub use crate::record::PointStatus;
use crate::resume;
use crate::stats::EngineStats;
use cactid_core::{CertifiedBounds, SolutionLinter};
use cactid_tech::{CellTechnology, TechNode, Technology};
use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::Path;
use std::time::Instant;

/// How to run one exploration.
#[derive(Clone, Copy, Default)]
pub struct ExploreConfig<'a> {
    /// Worker threads; `0` means the machine's available parallelism.
    pub threads: usize,
    /// Output JSONL path. `None` runs fully in memory — no sidecars, no
    /// resume.
    pub out: Option<&'a Path>,
    /// Restore completed points from the sidecars of a previous run
    /// against the same grid.
    pub resume: bool,
    /// Extract the Pareto frontier and annotate `ok` records.
    pub pareto: bool,
    /// Statically screen unique specs before the solve stage and skip the
    /// ones proven infeasible ([`cactid_core::static_screen`]). Skipped
    /// points render byte-identical records to a real solve of an
    /// infeasible point, so output files are unaffected.
    pub audit: bool,
    /// Lint engine consulted on every candidate (shared across workers).
    pub linter: Option<&'a (dyn SolutionLinter + Sync)>,
    /// Solve memo to populate and consult. `None` (the default) gives the
    /// run a fresh private cache, preserving the engine's historical
    /// behavior byte for byte; passing a handle lets long-lived callers
    /// (the `cactid-serve` service, repeated in-process sweeps) share warm
    /// results across runs. A shared cache must only ever see one linter
    /// configuration — the linter participates in the solve but not in
    /// the cache key (see [`SolveCache`]).
    pub cache: Option<&'a SolveCache>,
}

impl fmt::Debug for ExploreConfig<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExploreConfig")
            .field("threads", &self.threads)
            .field("out", &self.out)
            .field("resume", &self.resume)
            .field("pareto", &self.pareto)
            .field("audit", &self.audit)
            .field("linter", &self.linter.map(|_| "dyn SolutionLinter"))
            .field("cache", &self.cache.map(|_| "SolveCache"))
            .finish()
    }
}

/// The result of one [`explore`] run.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// One rendered JSONL record per grid point, in index order,
    /// Pareto-annotated when requested — exactly the final file contents.
    pub lines: Vec<String>,
    /// The Pareto frontier (empty unless requested).
    pub frontier: Vec<ParetoPoint>,
    /// Stage counters and timing.
    pub stats: EngineStats,
}

struct Sidecars {
    part: File,
    ckpt: File,
}

impl Sidecars {
    fn open(
        out: &Path,
        fingerprint: u64,
        points: usize,
        append: bool,
    ) -> Result<Self, ExploreError> {
        let open = |p: &Path| -> Result<File, ExploreError> {
            let mut opts = OpenOptions::new();
            opts.create(true);
            if append {
                // A kill mid-write leaves a newline-less fragment; cut it
                // before appending so lines never merge.
                resume::trim_torn_tail(p)?;
                opts.append(true);
            } else {
                opts.write(true).truncate(true);
            }
            opts.open(p)
                .map_err(|e| ExploreError::Io(format!("{}: {e}", p.display())))
        };
        let part = open(&resume::part_path(out))?;
        let mut ckpt = open(&resume::ckpt_path(out))?;
        if !append {
            writeln!(ckpt, "{}", resume::header(fingerprint, points))
                .map_err(|e| ExploreError::Io(format!("checkpoint header: {e}")))?;
        }
        Ok(Sidecars { part, ckpt })
    }

    /// Records one completed point in both sidecars, flushed so a kill
    /// right after loses nothing.
    fn record(
        &mut self,
        idx: usize,
        line: &str,
        status: PointStatus,
        metrics: Option<&ParetoMetrics>,
    ) -> Result<(), ExploreError> {
        let io = |e: std::io::Error| ExploreError::Io(format!("sidecar write: {e}"));
        writeln!(self.part, "{line}").map_err(io)?;
        writeln!(self.ckpt, "{}", resume::line(idx, status, metrics)).map_err(io)?;
        self.part.flush().map_err(io)?;
        self.ckpt.flush().map_err(io)
    }
}

/// Runs one exploration. See the module docs for the staging and the
/// determinism contract.
///
/// # Errors
///
/// [`ExploreError::EmptyAxis`] / [`ExploreError::TooManyPoints`] from
/// expansion, [`ExploreError::Checkpoint`] when resuming against a changed
/// grid, and [`ExploreError::Io`] on filesystem failures. Per-point solve
/// failures are *not* errors — they become `infeasible`/`invalid` records.
pub fn explore(grid: &Grid, config: &ExploreConfig<'_>) -> Result<ExploreReport, ExploreError> {
    // ---- Stage 1: expand ----
    let t0 = Instant::now();
    let expand_span = cactid_obs::span("explore.expand");
    let expansion = grid.expand()?;
    let points = &expansion.points;
    let n = points.len();
    let mut stats = EngineStats {
        points: n,
        ..EngineStats::default()
    };
    stats.expand = t0.elapsed();
    drop(expand_span);
    cactid_obs::counter!("explore.engine.points").add(n as u64);

    // ---- Stage 2: solve ----
    let t1 = Instant::now();
    let solve_span = cactid_obs::span("explore.solve");
    let resumed = match config.out {
        Some(out) if config.resume => resume::load(out, expansion.fingerprint, n)?,
        _ => HashMap::new(),
    };
    let mut sidecars = match config.out {
        Some(out) => Some(Sidecars::open(
            out,
            expansion.fingerprint,
            n,
            !resumed.is_empty(),
        )?),
        None => None,
    };

    let mut lines: Vec<Option<String>> = vec![None; n];
    let mut statuses: Vec<Option<PointStatus>> = vec![None; n];
    let mut metrics: Vec<Option<ParetoMetrics>> = vec![None; n];

    // Place resumed points, render invalid ones, and group the remaining
    // valid points by spec fingerprint — duplicates ride along with their
    // group and cost nothing. Group order follows first point index, so
    // job numbering is deterministic.
    let mut jobs: Vec<Vec<usize>> = Vec::new();
    let mut job_of: HashMap<u64, Vec<usize>> = HashMap::new();
    for point in points {
        let idx = point.idx;
        if let Some(r) = resumed.get(&idx) {
            // A restored invalid point counts under `invalid`, not
            // `resumed`, so the accounting partition stays disjoint.
            if r.status == PointStatus::Invalid {
                stats.invalid += 1;
            } else {
                stats.resumed += 1;
            }
            lines[idx] = Some(r.line.clone());
            statuses[idx] = Some(r.status);
            metrics[idx] = r.metrics;
            continue;
        }
        match (&point.spec, point.fingerprint()) {
            (Ok(spec), Some(fp)) => {
                // Buckets resolve 64-bit collisions by spec equality, like
                // the solve memo does.
                let bucket = job_of.entry(fp).or_default();
                let existing = bucket
                    .iter()
                    .copied()
                    .find(|&j| points[jobs[j][0]].spec.as_ref().ok() == Some(spec));
                match existing {
                    Some(j) => jobs[j].push(idx),
                    None => {
                        bucket.push(jobs.len());
                        jobs.push(vec![idx]);
                    }
                }
            }
            _ => {
                let err = point.spec.as_ref().expect_err("no fingerprint means Err");
                let line = record::render_invalid(point, err);
                if let Some(s) = sidecars.as_mut() {
                    s.record(idx, &line, PointStatus::Invalid, None)?;
                }
                lines[idx] = Some(line);
                statuses[idx] = Some(PointStatus::Invalid);
                stats.invalid += 1;
            }
        }
    }
    stats.unique_specs = jobs.len();

    // Optional static screen: prove unique specs infeasible with the exact
    // closed-form checks the solve itself would apply, and retire their
    // whole groups without touching the solver. The rendered records carry
    // the screen's sweep counters, which match a real infeasible solve
    // exactly, so the output stays byte-identical.
    if config.audit {
        let _audit_span = cactid_obs::span("explore.audit");
        // One interval scan per (node, cell) pair covers every spec that
        // shares the technology; the certified screen gives the same
        // verdicts, stats, and reason histogram as the exact one for any
        // bounds, so the rendered records stay byte-identical.
        let mut proved: HashMap<(TechNode, CellTechnology), CertifiedBounds> = HashMap::new();
        let mut kept = Vec::with_capacity(jobs.len());
        for group in std::mem::take(&mut jobs) {
            let Ok(spec) = points[group[0]].spec.as_ref() else {
                unreachable!("job specs are valid")
            };
            let bounds = proved
                .entry((spec.node, spec.cell_tech))
                .or_insert_with(|| cactid_prove::certified_bounds(spec.node, spec.cell_tech));
            let screen = cactid_core::static_screen_certified(spec, bounds);
            match screen.verdict {
                cactid_core::ScreenVerdict::Infeasible(err) => {
                    let solved = crate::cache::CachedSolve {
                        result: Err(err),
                        stats: screen.stats,
                    };
                    let status = record::solved_status(&solved);
                    for &idx in &group {
                        let line = record::render_solved(&points[idx], &solved);
                        if let Some(s) = sidecars.as_mut() {
                            s.record(idx, &line, status, None)?;
                        }
                        lines[idx] = Some(line);
                        statuses[idx] = Some(status);
                    }
                    stats.audit_skipped += group.len();
                }
                cactid_core::ScreenVerdict::MaybeFeasible { .. } => kept.push(group),
            }
        }
        jobs = kept;
        cactid_obs::counter!("explore.engine.audit_skipped").add(stats.audit_skipped as u64);
    }

    // Injected handle or a run-private memo: the run-private default keeps
    // the historical behavior (and the determinism tests' bytes) intact.
    let private_cache;
    let cache = match config.cache {
        Some(shared) => shared,
        None => {
            private_cache = SolveCache::new();
            &private_cache
        }
    };
    let linter = config.linter;
    let tech_before = Technology::constructions();
    let mut io_error: Option<ExploreError> = None;
    pool::run_indexed(
        config.threads,
        jobs.len(),
        |j| {
            let Ok(spec) = points[jobs[j][0]].spec.as_ref() else {
                unreachable!("job specs are valid")
            };
            cache.solve_point(spec, linter.map(|l| l as &dyn SolutionLinter))
        },
        |j, (solved, was_cached)| {
            let group = &jobs[j];
            if was_cached {
                stats.memoized += group.len();
            } else {
                stats.solved += 1;
                stats.memoized += group.len() - 1;
                stats.orgs_enumerated += solved.stats.orgs_enumerated;
                stats.bound_pruned += solved.stats.bound_pruned;
                stats.lint_rejected += solved.stats.lint_rejected;
            }
            let status = record::solved_status(&solved);
            let m = solved.result.as_ref().ok().map(record::solution_metrics);
            for &idx in group {
                let line = record::render_solved(&points[idx], &solved);
                if io_error.is_none() {
                    if let Some(s) = sidecars.as_mut() {
                        if let Err(e) = s.record(idx, &line, status, m.as_ref()) {
                            io_error = Some(e);
                        }
                    }
                }
                lines[idx] = Some(line);
                statuses[idx] = Some(status);
                metrics[idx] = m;
            }
        },
    );
    if let Some(e) = io_error {
        return Err(e);
    }
    stats.tech_constructions = Technology::constructions() - tech_before;
    stats.solve = t1.elapsed();
    drop(solve_span);

    // ---- Stage 3: finalize ----
    let t2 = Instant::now();
    let _finalize_span = cactid_obs::span("explore.finalize");
    for status in statuses.iter().flatten() {
        match status {
            PointStatus::Ok => stats.ok += 1,
            PointStatus::Infeasible => stats.infeasible += 1,
            // Already counted at placement, whether fresh or resumed.
            PointStatus::Invalid => {}
        }
    }

    let mut front = Vec::new();
    if config.pareto {
        let pts: Vec<(usize, ParetoMetrics)> = metrics
            .iter()
            .enumerate()
            .filter_map(|(i, m)| m.map(|m| (i, m)))
            .collect();
        stats.non_finite = pts.iter().filter(|(_, m)| !m.is_finite()).count();
        cactid_obs::counter!("explore.engine.non_finite").add(stats.non_finite as u64);
        front = frontier(&pts);
        let dominates: HashMap<usize, usize> = front.iter().map(|p| (p.idx, p.dominates)).collect();
        for (i, line) in lines.iter_mut().enumerate() {
            if statuses[i] == Some(PointStatus::Ok) {
                let Some(line) = line.as_mut() else {
                    unreachable!("ok points are rendered")
                };
                record::annotate_pareto(line, dominates.get(&i).copied());
            }
        }
    }
    stats.pareto_points = front.len();

    let lines: Vec<String> = lines
        .into_iter()
        .map(|l| l.unwrap_or_else(|| unreachable!("every point is resolved")))
        .collect();
    if let Some(out) = config.out {
        drop(sidecars); // flushed; keep them on disk so reruns resume free
        let mut buf = String::new();
        for l in &lines {
            buf.push_str(l);
            buf.push('\n');
        }
        let tmp = out.with_extension("jsonl.tmp");
        std::fs::write(&tmp, buf)
            .map_err(|e| ExploreError::Io(format!("{}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, out)
            .map_err(|e| ExploreError::Io(format!("{}: {e}", out.display())))?;
    }
    stats.finalize = t2.elapsed();

    debug_assert!(stats.balanced(), "point accounting is off: {stats:?}");
    Ok(ExploreReport {
        lines,
        frontier: front,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::OptVariant;

    fn grid() -> Grid {
        let mut g = Grid::new();
        g.capacities = vec![64 << 10, 128 << 10];
        g.associativities = vec![4, 8];
        g
    }

    #[test]
    fn in_memory_run_resolves_every_point() {
        let report = explore(&grid(), &ExploreConfig::default()).unwrap();
        assert_eq!(report.lines.len(), 4);
        assert!(report.stats.balanced());
        assert_eq!(report.stats.solved, 4);
        assert_eq!(report.stats.ok, 4);
        assert!(report.stats.orgs_enumerated > 0);
        for (i, line) in report.lines.iter().enumerate() {
            assert_eq!(record::line_idx(line), Some(i));
        }
    }

    #[test]
    fn duplicate_specs_are_memoized_not_resolved() {
        let mut g = grid();
        // Same knobs under a second label: same spec fingerprints.
        g.opts.push(OptVariant {
            label: "duplicate".to_string(),
            ..OptVariant::default_variant()
        });
        let report = explore(&g, &ExploreConfig::default()).unwrap();
        assert_eq!(report.stats.points, 8);
        assert_eq!(report.stats.unique_specs, 4);
        assert_eq!(report.stats.solved, 4);
        assert_eq!(report.stats.memoized, 4);
        // The duplicate records differ only in index and opt label.
        assert_eq!(
            report.lines[0]
                .replace("{\"idx\":0,", "{\"idx\":1,")
                .replace("\"opt\":\"default\"", "\"opt\":\"duplicate\""),
            report.lines[1]
        );
    }

    #[test]
    fn pareto_annotations_mark_a_nonempty_frontier() {
        let config = ExploreConfig {
            pareto: true,
            ..ExploreConfig::default()
        };
        let report = explore(&grid(), &config).unwrap();
        assert!(!report.frontier.is_empty());
        assert_eq!(report.stats.pareto_points, report.frontier.len());
        let members = report
            .lines
            .iter()
            .filter(|l| l.contains("\"pareto\":{\"frontier\":true"))
            .count();
        assert_eq!(members, report.frontier.len());
        assert!(report
            .lines
            .iter()
            .all(|l| l.contains("\"pareto\":{\"frontier\"")));
    }

    #[test]
    fn engine_publishes_obs_metrics() {
        let before = cactid_obs::snapshot();
        let points0 = before.counter("explore.engine.points").unwrap_or(0);
        let claims0 = before.counter("explore.pool.claims").unwrap_or(0);
        let misses0 = before.counter("explore.cache.misses").unwrap_or(0);
        let report = explore(&grid(), &ExploreConfig::default()).unwrap();
        assert_eq!(report.stats.points, 4);
        // Deltas, not absolutes: other tests share the process registry.
        let after = cactid_obs::snapshot();
        assert!(after.counter("explore.engine.points").unwrap() >= points0 + 4);
        assert!(after.counter("explore.pool.claims").unwrap() >= claims0 + 4);
        assert!(after.counter("explore.cache.misses").unwrap() >= misses0 + 4);
        for span in ["expand", "solve", "finalize"] {
            let h = after.histogram(&format!("span.explore.{span}.ns"));
            assert!(h.is_some_and(|h| h.count >= 1), "missing stage span {span}");
        }
        assert!(after.histogram("explore.pool.work_ns").unwrap().count >= 4);
        assert!(
            after
                .histogram("explore.pool.claims_per_worker")
                .unwrap()
                .count
                >= 1
        );
    }

    #[test]
    fn injected_cache_is_shared_across_runs_with_identical_output() {
        let cache = SolveCache::new();
        let config = ExploreConfig {
            cache: Some(&cache),
            ..ExploreConfig::default()
        };
        let cold = explore(&grid(), &config).unwrap();
        assert_eq!(cold.stats.solved, 4);
        assert_eq!(cache.len(), 4);
        // Second run over the same grid: every point served from the
        // injected memo, not re-solved — and the bytes don't move.
        let warm = explore(&grid(), &config).unwrap();
        assert_eq!(warm.stats.solved, 0);
        assert_eq!(warm.stats.memoized, 4);
        assert_eq!(warm.lines, cold.lines);
        // A default-config run still gets a private cache: it re-solves.
        let private = explore(&grid(), &ExploreConfig::default()).unwrap();
        assert_eq!(private.stats.solved, 4);
        assert_eq!(private.lines, cold.lines);
    }

    #[test]
    fn invalid_points_are_reported_not_fatal() {
        let mut g = grid();
        g.capacities = vec![48 << 10, 64 << 10]; // 48 KB: invalid geometry
        let report = explore(&g, &ExploreConfig::default()).unwrap();
        assert_eq!(report.stats.invalid, 2);
        assert_eq!(report.stats.ok, 2);
        assert!(report.lines[0].contains("\"status\":\"invalid\""));
        assert!(report.stats.balanced());
    }
}
