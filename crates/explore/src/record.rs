//! JSONL record rendering for grid points.
//!
//! One record per grid point, one JSON object per line. Records carry only
//! deterministic data — axis values, spec-derived fields, solution metrics
//! — and never timing or host information, so the final JSONL is
//! byte-identical across runs and thread counts.

use crate::cache::CachedSolve;
use crate::grid::GridPoint;
use crate::json::JsonObject;
use crate::pareto::ParetoMetrics;
use cactid_core::{AccessMode, CactiError, Solution};
use cactid_tech::CellTechnology;

/// How one grid point ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointStatus {
    /// Solved with a §2.4 winner.
    Ok,
    /// Valid spec, but the solver found no winner.
    Infeasible,
    /// The axis combination failed spec validation.
    Invalid,
}

impl PointStatus {
    /// The `status` field value in the JSONL record.
    pub fn label(self) -> &'static str {
        match self {
            PointStatus::Ok => "ok",
            PointStatus::Infeasible => "infeasible",
            PointStatus::Invalid => "invalid",
        }
    }
}

/// Stable lowercase cell label for records and the CLI.
pub fn cell_label(cell: CellTechnology) -> &'static str {
    match cell {
        CellTechnology::Sram => "sram",
        CellTechnology::LpDram => "lp-dram",
        CellTechnology::CommDram => "comm-dram",
    }
}

/// Stable lowercase access-mode label for records and the CLI.
pub fn mode_label(mode: AccessMode) -> &'static str {
    match mode {
        AccessMode::Normal => "normal",
        AccessMode::Sequential => "sequential",
        AccessMode::Fast => "fast",
    }
}

/// The four Pareto objectives of a winning solution, in SI units.
pub fn solution_metrics(sol: &Solution) -> ParetoMetrics {
    ParetoMetrics {
        access_s: sol.access_time.value(),
        read_j: sol.read_energy.value(),
        area_m2: sol.area.value(),
        leakage_w: (sol.leakage_power + sol.refresh_power).value(),
    }
}

fn base_object(point: &GridPoint) -> JsonObject {
    let mut o = JsonObject::new();
    o.u64("idx", point.idx as u64)
        .u64("capacity_bytes", point.capacity_bytes)
        .u64("block_bytes", u64::from(point.block_bytes))
        .u64("associativity", u64::from(point.associativity))
        .u64("banks", u64::from(point.banks))
        .f64("node_nm", point.node.feature_nm())
        .str("cell", cell_label(point.cell))
        .str("mode", mode_label(point.access_mode))
        .str("opt", &point.opt_label);
    o
}

/// Renders the record for a point whose spec failed validation.
pub fn render_invalid(point: &GridPoint, err: &CactiError) -> String {
    let mut o = base_object(point);
    o.str("status", PointStatus::Invalid.label())
        .str("error", &err.to_string());
    o.finish()
}

/// Renders the record for a solved point (winner or failure).
pub fn render_solved(point: &GridPoint, solve: &CachedSolve) -> String {
    let mut o = base_object(point);
    match &solve.result {
        Ok(sol) => {
            o.str("status", PointStatus::Ok.label())
                .f64("access_ns", sol.access_ns())
                .f64("random_cycle_ns", sol.random_cycle.value() * 1e9)
                .f64("read_nj", sol.read_energy_nj())
                .f64("write_nj", sol.write_energy.value() * 1e9)
                .f64("area_mm2", sol.area_mm2())
                .f64("area_efficiency", sol.area_efficiency)
                .f64("leakage_mw", sol.leakage_power.value() * 1e3)
                .f64("refresh_mw", sol.refresh_power.value() * 1e3);
            let mut org = JsonObject::new();
            org.u64("ndwl", u64::from(sol.org.ndwl))
                .u64("ndbl", u64::from(sol.org.ndbl))
                .f64("nspd", sol.org.nspd)
                .u64("deg_bl_mux", u64::from(sol.org.deg_bl_mux))
                .u64("deg_sa_mux", u64::from(sol.org.deg_sa_mux));
            o.raw("org", &org.finish());
        }
        Err(e) => {
            o.str("status", PointStatus::Infeasible.label())
                .str("error", &e.to_string());
        }
    }
    o.u64("orgs_enumerated", solve.stats.orgs_enumerated as u64)
        .u64("bound_pruned", solve.stats.bound_pruned as u64)
        .u64("feasible", solve.stats.feasible as u64)
        .u64("lint_rejected", solve.stats.lint_rejected as u64);
    o.finish()
}

/// The `status` of a rendered solved point, without re-parsing the line.
pub fn solved_status(solve: &CachedSolve) -> PointStatus {
    if solve.result.is_ok() {
        PointStatus::Ok
    } else {
        PointStatus::Infeasible
    }
}

/// Appends the Pareto annotation to an `ok` record line.
///
/// `dominates` is `Some(n)` for frontier members, `None` for dominated
/// points. [`strip_pareto`] is the exact inverse; resume relies on that.
pub fn annotate_pareto(line: &mut String, dominates: Option<usize>) {
    debug_assert!(line.ends_with('}'));
    line.pop();
    match dominates {
        Some(n) => {
            line.push_str(",\"pareto\":{\"frontier\":true,\"dominates\":");
            line.push_str(&n.to_string());
            line.push_str("}}");
        }
        None => line.push_str(",\"pareto\":{\"frontier\":false}}"),
    }
}

/// Removes a Pareto annotation added by [`annotate_pareto`], if present.
pub fn strip_pareto(line: &mut String) {
    if let Some(pos) = line.find(",\"pareto\":") {
        line.truncate(pos);
        line.push('}');
    }
}

/// Parses the `idx` of a rendered record line (records always lead with
/// the `idx` field).
pub fn line_idx(line: &str) -> Option<usize> {
    let rest = line.strip_prefix("{\"idx\":")?;
    let end = rest.find(',')?;
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;
    use cactid_core::SolveStats;

    fn point() -> GridPoint {
        let mut g = Grid::new();
        g.capacities = vec![64 << 10];
        g.expand().unwrap().points.remove(0)
    }

    fn solved() -> CachedSolve {
        let p = point();
        CachedSolve {
            result: cactid_core::optimize(p.spec.as_ref().unwrap()),
            stats: SolveStats {
                orgs_enumerated: 42,
                bound_pruned: 11,
                electrical_pruned: 0,
                feasible: 7,
                lint_rejected: 0,
            },
        }
    }

    #[test]
    fn ok_record_has_axes_metrics_and_org() {
        let line = render_solved(&point(), &solved());
        assert!(line.starts_with("{\"idx\":0,"));
        assert!(line.contains("\"capacity_bytes\":65536"));
        assert!(line.contains("\"cell\":\"sram\""));
        assert!(line.contains("\"status\":\"ok\""));
        assert!(line.contains("\"access_ns\":"));
        assert!(line.contains("\"org\":{\"ndwl\":"));
        assert!(line.contains("\"orgs_enumerated\":42"));
        assert!(line.contains("\"bound_pruned\":11"));
        assert!(!line.contains("\"error\""));
    }

    #[test]
    fn infeasible_record_carries_the_error() {
        let s = CachedSolve {
            result: Err(CactiError::NoFeasibleSolution),
            stats: SolveStats::default(),
        };
        let line = render_solved(&point(), &s);
        assert!(line.contains("\"status\":\"infeasible\""));
        assert!(line.contains("\"error\":\"no feasible array organization"));
        assert_eq!(solved_status(&s), PointStatus::Infeasible);
    }

    #[test]
    fn invalid_record_comes_from_the_build_error() {
        let line = render_invalid(
            &point(),
            &CactiError::InvalidSpec("capacity must divide".into()),
        );
        assert!(line.contains("\"status\":\"invalid\""));
        assert!(line.contains("capacity must divide"));
    }

    #[test]
    fn pareto_annotation_round_trips() {
        let base = render_solved(&point(), &solved());
        for dominates in [Some(12), None] {
            let mut line = base.clone();
            annotate_pareto(&mut line, dominates);
            assert!(line.contains("\"pareto\":{\"frontier\""));
            strip_pareto(&mut line);
            assert_eq!(line, base);
        }
    }

    #[test]
    fn line_idx_parses_the_leading_field() {
        let line = render_solved(&point(), &solved());
        assert_eq!(line_idx(&line), Some(0));
        assert_eq!(line_idx("not json"), None);
    }
}
