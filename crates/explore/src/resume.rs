//! Checkpointing: the sidecar files that make interrupted sweeps resumable.
//!
//! A run writing to `out.jsonl` streams two sidecars in completion order,
//! one line per finished point, flushed line-by-line:
//!
//! * `out.jsonl.part` — the raw JSONL records (no Pareto annotations);
//! * `out.jsonl.ckpt` — a TSV with one header and one metrics line per
//!   point:
//!
//! ```text
//! #cactid-explore-ckpt v1 grid=6c62272e07bb0142 points=100
//! 0<TAB>ok<TAB>1.23e-9<TAB>4.5e-11<TAB>2.1e-7<TAB>0.013
//! 7<TAB>infeasible<TAB>-<TAB>-<TAB>-<TAB>-
//! ```
//!
//! The header pins the grid fingerprint and point count, so a resume
//! against an edited grid fails loudly instead of stitching mismatched
//! points together. The ckpt carries the four Pareto objectives (f64
//! `Display`, which round-trips exactly) so a resumed run can extract the
//! frontier without parsing JSON. A point counts as completed only when
//! present in **both** sidecars — a torn final line in either file simply
//! re-solves that point.

use crate::error::ExploreError;
use crate::pareto::ParetoMetrics;
use crate::record::{line_idx, strip_pareto, PointStatus};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Magic prefix of the checkpoint header line.
pub const CKPT_MAGIC: &str = "#cactid-explore-ckpt v1";

/// The streaming-records sidecar path for an output file.
pub fn part_path(out: &Path) -> PathBuf {
    sidecar(out, "part")
}

/// The checkpoint sidecar path for an output file.
pub fn ckpt_path(out: &Path) -> PathBuf {
    sidecar(out, "ckpt")
}

fn sidecar(out: &Path, ext: &str) -> PathBuf {
    let mut name = out.as_os_str().to_os_string();
    name.push(".");
    name.push(ext);
    PathBuf::from(name)
}

/// Renders the checkpoint header for a grid.
pub fn header(fingerprint: u64, points: usize) -> String {
    format!("{CKPT_MAGIC} grid={fingerprint:016x} points={points}")
}

/// Renders one checkpoint line.
pub fn line(idx: usize, status: PointStatus, metrics: Option<&ParetoMetrics>) -> String {
    let mut s = format!("{idx}\t{}", status.label());
    match metrics {
        Some(m) => {
            for v in [m.access_s, m.read_j, m.area_m2, m.leakage_w] {
                let _ = write!(s, "\t{v}");
            }
        }
        None => s.push_str("\t-\t-\t-\t-"),
    }
    s
}

fn bad(msg: impl Into<String>) -> ExploreError {
    ExploreError::Checkpoint(msg.into())
}

/// Parses [`header`] back into `(fingerprint, points)`.
pub fn parse_header(line: &str) -> Result<(u64, usize), ExploreError> {
    let rest = line
        .strip_prefix(CKPT_MAGIC)
        .ok_or_else(|| bad(format!("not a cactid-explore checkpoint: {line:?}")))?;
    let mut grid = None;
    let mut points = None;
    for field in rest.split_whitespace() {
        if let Some(v) = field.strip_prefix("grid=") {
            grid = u64::from_str_radix(v, 16).ok();
        } else if let Some(v) = field.strip_prefix("points=") {
            points = v.parse().ok();
        }
    }
    match (grid, points) {
        (Some(g), Some(p)) => Ok((g, p)),
        _ => Err(bad(format!("malformed checkpoint header: {line:?}"))),
    }
}

fn parse_status(s: &str) -> Option<PointStatus> {
    match s {
        "ok" => Some(PointStatus::Ok),
        "infeasible" => Some(PointStatus::Infeasible),
        "invalid" => Some(PointStatus::Invalid),
        _ => None,
    }
}

/// Parses one checkpoint [`line`].
pub fn parse_line(text: &str) -> Result<(usize, PointStatus, Option<ParetoMetrics>), ExploreError> {
    let fields: Vec<&str> = text.split('\t').collect();
    let [idx, status, access, read, area, leak] = fields[..] else {
        return Err(bad(format!("checkpoint line has wrong arity: {text:?}")));
    };
    let idx = idx
        .parse()
        .map_err(|_| bad(format!("bad checkpoint index: {text:?}")))?;
    let status =
        parse_status(status).ok_or_else(|| bad(format!("bad checkpoint status: {text:?}")))?;
    let metrics = if access == "-" {
        None
    } else {
        let f = |s: &str| {
            s.parse::<f64>()
                .map_err(|_| bad(format!("bad checkpoint metric: {text:?}")))
        };
        Some(ParetoMetrics {
            access_s: f(access)?,
            read_j: f(read)?,
            area_m2: f(area)?,
            leakage_w: f(leak)?,
        })
    };
    Ok((idx, status, metrics))
}

/// One point restored from the sidecars.
#[derive(Debug, Clone, PartialEq)]
pub struct ResumedPoint {
    /// The stored record line, Pareto annotation stripped.
    pub line: String,
    /// The point's status.
    pub status: PointStatus,
    /// The Pareto objectives, for `ok` points.
    pub metrics: Option<ParetoMetrics>,
}

/// Loads the completed points of a previous run against the same grid.
///
/// Missing sidecars mean a fresh start (empty map). A present checkpoint
/// whose header disagrees with `fingerprint`/`points` is an error — the
/// grid definition changed under the output file. Trailing torn lines in
/// either sidecar are ignored; only points recorded in both count.
///
/// # Errors
///
/// [`ExploreError::Checkpoint`] on a header mismatch or corrupt line, and
/// [`ExploreError::Io`] if a sidecar exists but cannot be read.
pub fn load(
    out: &Path,
    fingerprint: u64,
    points: usize,
) -> Result<HashMap<usize, ResumedPoint>, ExploreError> {
    let read = |p: &Path| -> Result<Option<String>, ExploreError> {
        match std::fs::read_to_string(p) {
            Ok(s) => Ok(Some(s)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(ExploreError::Io(format!("{}: {e}", p.display()))),
        }
    };
    let (Some(ckpt), Some(part)) = (read(&ckpt_path(out))?, read(&part_path(out))?) else {
        return Ok(HashMap::new());
    };

    let mut ckpt_lines = ckpt.lines();
    let head = ckpt_lines
        .next()
        .ok_or_else(|| bad("empty checkpoint file"))?;
    let (got_grid, got_points) = parse_header(head)?;
    if got_grid != fingerprint || got_points != points {
        return Err(bad(format!(
            "checkpoint is for a different grid \
             (grid {got_grid:016x}/{got_points} points, expected \
             {fingerprint:016x}/{points}); delete the sidecars or change --out"
        )));
    }

    let mut statuses = HashMap::new();
    for l in ckpt_lines {
        if l.is_empty() {
            continue;
        }
        // A torn trailing line is normal after an interrupt; stop there.
        let Ok((idx, status, metrics)) = parse_line(l) else {
            break;
        };
        if idx >= points {
            return Err(bad(format!("checkpoint index {idx} out of range")));
        }
        statuses.insert(idx, (status, metrics));
    }

    let mut out_map = HashMap::new();
    for l in part.lines() {
        let Some(idx) = line_idx(l) else { continue };
        let Some(&(status, metrics)) = statuses.get(&idx) else {
            continue;
        };
        let mut line = l.to_string();
        strip_pareto(&mut line);
        out_map.insert(
            idx,
            ResumedPoint {
                line,
                status,
                metrics,
            },
        );
    }
    Ok(out_map)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> ParetoMetrics {
        ParetoMetrics {
            access_s: 1.25e-9,
            read_j: 4.5e-11,
            area_m2: 2.1e-7,
            leakage_w: 0.013,
        }
    }

    #[test]
    fn header_round_trips() {
        let h = header(0x6c62_272e_07bb_0142, 100);
        assert_eq!(parse_header(&h).unwrap(), (0x6c62_272e_07bb_0142, 100));
        assert!(parse_header("#something-else").is_err());
    }

    #[test]
    fn line_round_trips_metrics_exactly() {
        let m = metrics();
        let (idx, status, parsed) = parse_line(&line(7, PointStatus::Ok, Some(&m))).unwrap();
        assert_eq!((idx, status), (7, PointStatus::Ok));
        let p = parsed.unwrap();
        assert_eq!(p.access_s.to_bits(), m.access_s.to_bits());
        assert_eq!(p.leakage_w.to_bits(), m.leakage_w.to_bits());

        let (idx, status, parsed) = parse_line(&line(3, PointStatus::Infeasible, None)).unwrap();
        assert_eq!((idx, status), (3, PointStatus::Infeasible));
        assert!(parsed.is_none());
    }

    #[test]
    fn load_joins_both_sidecars() {
        let dir = std::env::temp_dir().join("cactid-explore-resume-test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("sweep.jsonl");
        let fp = 0xabcdu64;
        let mut ckpt = header(fp, 10);
        ckpt.push('\n');
        ckpt.push_str(&line(0, PointStatus::Ok, Some(&metrics())));
        ckpt.push('\n');
        ckpt.push_str(&line(1, PointStatus::Ok, Some(&metrics())));
        ckpt.push('\n');
        std::fs::write(ckpt_path(&out), ckpt).unwrap();
        // Point 1 missing from the part file (torn write): not resumed.
        // The stored pareto annotation on point 0 is stripped on load.
        std::fs::write(
            part_path(&out),
            "{\"idx\":0,\"status\":\"ok\",\"pareto\":{\"frontier\":false}}\n",
        )
        .unwrap();

        let m = load(&out, fp, 10).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m[&0].line, "{\"idx\":0,\"status\":\"ok\"}");
        assert_eq!(m[&0].status, PointStatus::Ok);
        assert!(m[&0].metrics.is_some());

        // Wrong fingerprint: loud failure.
        assert!(matches!(
            load(&out, fp + 1, 10),
            Err(ExploreError::Checkpoint(_))
        ));
        // Missing sidecars: fresh start.
        assert!(load(&dir.join("absent.jsonl"), fp, 10).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
