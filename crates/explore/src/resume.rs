//! Checkpointing: the sidecar files that make interrupted sweeps resumable.
//!
//! A run writing to `out.jsonl` streams two sidecars in completion order,
//! one line per finished point, flushed line-by-line:
//!
//! * `out.jsonl.part` — the raw JSONL records (no Pareto annotations);
//! * `out.jsonl.ckpt` — a TSV with one header and one metrics line per
//!   point:
//!
//! ```text
//! #cactid-explore-ckpt v2 grid=6c62272e07bb0142 points=100
//! 0<TAB>ok<TAB>1.23e-9<TAB>4.5e-11<TAB>2.1e-7<TAB>0.013<TAB>.
//! 7<TAB>infeasible<TAB>-<TAB>-<TAB>-<TAB>-<TAB>.
//! ```
//!
//! The header pins the grid fingerprint and point count, so a resume
//! against an edited grid fails loudly instead of stitching mismatched
//! points together. The ckpt carries the four Pareto objectives (f64
//! `Display`, which round-trips exactly) so a resumed run can extract the
//! frontier without parsing JSON. The trailing `.` is a completeness
//! sentinel: no field starts with `.`, so no truncation of a line can
//! still parse — a cut inside the last float (`0.013` → `0.01`) can never
//! be mistaken for a complete record with a different metric.
//!
//! A point counts as completed only when present in **both** sidecars,
//! and only **newline-terminated** lines count at all: a trailing
//! fragment left by a kill mid-write is ignored on load (the point
//! re-solves) and truncated away by [`trim_torn_tail`] before the resumed
//! run appends, so it can never merge with the next record. A malformed
//! *interior* line, by contrast, is real corruption and fails the load
//! loudly — tolerating it would silently discard every checkpoint written
//! after it.

use crate::error::ExploreError;
use crate::pareto::ParetoMetrics;
use crate::record::{line_idx, strip_pareto, PointStatus};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Magic prefix of the checkpoint header line.
pub const CKPT_MAGIC: &str = "#cactid-explore-ckpt v2";

/// Terminal field of every checkpoint [`line`]. No other field can start
/// with `.`, so a truncated line can never end in `<TAB>.` and pass as
/// complete.
const SENTINEL: &str = ".";

/// The streaming-records sidecar path for an output file.
pub fn part_path(out: &Path) -> PathBuf {
    sidecar(out, "part")
}

/// The checkpoint sidecar path for an output file.
pub fn ckpt_path(out: &Path) -> PathBuf {
    sidecar(out, "ckpt")
}

fn sidecar(out: &Path, ext: &str) -> PathBuf {
    let mut name = out.as_os_str().to_os_string();
    name.push(".");
    name.push(ext);
    PathBuf::from(name)
}

/// Renders the checkpoint header for a grid.
pub fn header(fingerprint: u64, points: usize) -> String {
    format!("{CKPT_MAGIC} grid={fingerprint:016x} points={points}")
}

/// Renders one checkpoint line.
pub fn line(idx: usize, status: PointStatus, metrics: Option<&ParetoMetrics>) -> String {
    let mut s = format!("{idx}\t{}", status.label());
    match metrics {
        Some(m) => {
            for v in [m.access_s, m.read_j, m.area_m2, m.leakage_w] {
                let _ = write!(s, "\t{v}");
            }
        }
        None => s.push_str("\t-\t-\t-\t-"),
    }
    s.push('\t');
    s.push_str(SENTINEL);
    s
}

fn bad(msg: impl Into<String>) -> ExploreError {
    ExploreError::Checkpoint(msg.into())
}

/// Parses [`header`] back into `(fingerprint, points)`.
pub fn parse_header(line: &str) -> Result<(u64, usize), ExploreError> {
    let rest = line
        .strip_prefix(CKPT_MAGIC)
        .ok_or_else(|| bad(format!("not a cactid-explore checkpoint: {line:?}")))?;
    let mut grid = None;
    let mut points = None;
    for field in rest.split_whitespace() {
        if let Some(v) = field.strip_prefix("grid=") {
            grid = u64::from_str_radix(v, 16).ok();
        } else if let Some(v) = field.strip_prefix("points=") {
            points = v.parse().ok();
        }
    }
    match (grid, points) {
        (Some(g), Some(p)) => Ok((g, p)),
        _ => Err(bad(format!("malformed checkpoint header: {line:?}"))),
    }
}

fn parse_status(s: &str) -> Option<PointStatus> {
    match s {
        "ok" => Some(PointStatus::Ok),
        "infeasible" => Some(PointStatus::Infeasible),
        "invalid" => Some(PointStatus::Invalid),
        _ => None,
    }
}

/// Parses one checkpoint [`line()`].
pub fn parse_line(text: &str) -> Result<(usize, PointStatus, Option<ParetoMetrics>), ExploreError> {
    let fields: Vec<&str> = text.split('\t').collect();
    let [idx, status, access, read, area, leak, SENTINEL] = fields[..] else {
        return Err(bad(format!("incomplete checkpoint line: {text:?}")));
    };
    let idx = idx
        .parse()
        .map_err(|_| bad(format!("bad checkpoint index: {text:?}")))?;
    let status =
        parse_status(status).ok_or_else(|| bad(format!("bad checkpoint status: {text:?}")))?;
    let metrics = if access == "-" {
        None
    } else {
        let f = |s: &str| {
            s.parse::<f64>()
                .map_err(|_| bad(format!("bad checkpoint metric: {text:?}")))
        };
        Some(ParetoMetrics {
            access_s: f(access)?,
            read_j: f(read)?,
            area_m2: f(area)?,
            leakage_w: f(leak)?,
        })
    };
    Ok((idx, status, metrics))
}

/// One point restored from the sidecars.
#[derive(Debug, Clone, PartialEq)]
pub struct ResumedPoint {
    /// The stored record line, Pareto annotation stripped.
    pub line: String,
    /// The point's status.
    pub status: PointStatus,
    /// The Pareto objectives, for `ok` points.
    pub metrics: Option<ParetoMetrics>,
}

/// Returns the newline-terminated lines of `s`, dropping a trailing
/// fragment torn by a kill mid-write.
fn complete_lines(s: &str) -> std::str::Lines<'_> {
    let end = s.rfind('\n').map_or(0, |i| i + 1);
    s[..end].lines()
}

/// Truncates a trailing newline-less fragment left by an interrupted
/// write, so that lines appended afterwards never merge with it. A
/// missing file is a no-op.
///
/// # Errors
///
/// [`ExploreError::Io`] when the file exists but cannot be read or
/// truncated.
pub fn trim_torn_tail(p: &Path) -> Result<(), ExploreError> {
    let io = |e: std::io::Error| ExploreError::Io(format!("{}: {e}", p.display()));
    let bytes = match std::fs::read(p) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(io(e)),
    };
    match bytes.last() {
        None | Some(b'\n') => return Ok(()),
        Some(_) => {}
    }
    let keep = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(p)
        .map_err(io)?;
    f.set_len(keep as u64).map_err(io)
}

/// Loads the completed points of a previous run against the same grid.
///
/// Missing sidecars mean a fresh start (empty map). A present checkpoint
/// whose header disagrees with `fingerprint`/`points` is an error — the
/// grid definition changed under the output file. Only newline-terminated
/// lines count, so a trailing torn fragment in either sidecar is ignored
/// (that point re-solves); a malformed interior checkpoint line is
/// corruption and fails loudly. Only points recorded in both sidecars are
/// resumed.
///
/// # Errors
///
/// [`ExploreError::Checkpoint`] on a header mismatch or corrupt line, and
/// [`ExploreError::Io`] if a sidecar exists but cannot be read.
pub fn load(
    out: &Path,
    fingerprint: u64,
    points: usize,
) -> Result<HashMap<usize, ResumedPoint>, ExploreError> {
    let read = |p: &Path| -> Result<Option<String>, ExploreError> {
        match std::fs::read_to_string(p) {
            Ok(s) => Ok(Some(s)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(ExploreError::Io(format!("{}: {e}", p.display()))),
        }
    };
    let (Some(ckpt), Some(part)) = (read(&ckpt_path(out))?, read(&part_path(out))?) else {
        return Ok(HashMap::new());
    };

    let mut ckpt_lines = complete_lines(&ckpt);
    let head = ckpt_lines
        .next()
        .ok_or_else(|| bad("empty checkpoint file"))?;
    let (got_grid, got_points) = parse_header(head)?;
    if got_grid != fingerprint || got_points != points {
        return Err(bad(format!(
            "checkpoint is for a different grid \
             (grid {got_grid:016x}/{got_points} points, expected \
             {fingerprint:016x}/{points}); delete the sidecars or change --out"
        )));
    }

    let mut statuses = HashMap::new();
    for l in ckpt_lines {
        // Newline-terminated lines were written whole, so a parse failure
        // here is corruption, not a torn tail.
        let (idx, status, metrics) = parse_line(l).map_err(|e| match e {
            ExploreError::Checkpoint(msg) => {
                bad(format!("{msg}; delete the sidecars or change --out"))
            }
            other => other,
        })?;
        if idx >= points {
            return Err(bad(format!("checkpoint index {idx} out of range")));
        }
        statuses.insert(idx, (status, metrics));
    }

    let mut out_map = HashMap::new();
    for l in complete_lines(&part) {
        let Some(idx) = line_idx(l) else { continue };
        let Some(&(status, metrics)) = statuses.get(&idx) else {
            continue;
        };
        let mut line = l.to_string();
        strip_pareto(&mut line);
        out_map.insert(
            idx,
            ResumedPoint {
                line,
                status,
                metrics,
            },
        );
    }
    Ok(out_map)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> ParetoMetrics {
        ParetoMetrics {
            access_s: 1.25e-9,
            read_j: 4.5e-11,
            area_m2: 2.1e-7,
            leakage_w: 0.013,
        }
    }

    #[test]
    fn header_round_trips() {
        let h = header(0x6c62_272e_07bb_0142, 100);
        assert_eq!(parse_header(&h).unwrap(), (0x6c62_272e_07bb_0142, 100));
        assert!(parse_header("#something-else").is_err());
    }

    #[test]
    fn line_round_trips_metrics_exactly() {
        let m = metrics();
        let (idx, status, parsed) = parse_line(&line(7, PointStatus::Ok, Some(&m))).unwrap();
        assert_eq!((idx, status), (7, PointStatus::Ok));
        let p = parsed.unwrap();
        assert_eq!(p.access_s.to_bits(), m.access_s.to_bits());
        assert_eq!(p.leakage_w.to_bits(), m.leakage_w.to_bits());

        let (idx, status, parsed) = parse_line(&line(3, PointStatus::Infeasible, None)).unwrap();
        assert_eq!((idx, status), (3, PointStatus::Infeasible));
        assert!(parsed.is_none());
    }

    #[test]
    fn no_truncation_of_a_line_parses() {
        // The sentinel makes completeness self-evident: every proper
        // prefix must fail, including cuts inside the last float that
        // would otherwise parse as a different metric ("0.013" -> "0.01").
        let full = line(7, PointStatus::Ok, Some(&metrics()));
        for cut in 0..full.len() {
            assert!(parse_line(&full[..cut]).is_err(), "prefix {cut} parsed");
        }
        // A v1-era line (no sentinel) is incomplete, not a shorter arity.
        assert!(parse_line("5\tok\t1e-9\t4e-11\t2e-7\t0.01").is_err());
    }

    #[test]
    fn torn_tail_is_ignored_but_interior_corruption_is_loud() {
        let dir = std::env::temp_dir().join("cactid-explore-torn-test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("sweep.jsonl");
        let fp = 0x1234u64;
        let l0 = line(0, PointStatus::Ok, Some(&metrics()));
        let l1 = line(1, PointStatus::Ok, Some(&metrics()));
        std::fs::write(
            part_path(&out),
            "{\"idx\":0,\"status\":\"ok\"}\n{\"idx\":1,\"status\":\"ok\"}\n",
        )
        .unwrap();

        // Torn trailing fragment (no newline): ignored, point 1 not resumed.
        let torn = format!("{}\n{l0}\n{}", header(fp, 10), &l1[..l1.len() - 3]);
        std::fs::write(ckpt_path(&out), &torn).unwrap();
        let m = load(&out, fp, 10).unwrap();
        assert_eq!(m.len(), 1);
        assert!(m.contains_key(&0));

        // The same bad line newline-terminated mid-file: corruption.
        let corrupt = format!("{}\n{}\n{l1}\n", header(fp, 10), &l0[..l0.len() - 3]);
        std::fs::write(ckpt_path(&out), &corrupt).unwrap();
        match load(&out, fp, 10) {
            Err(ExploreError::Checkpoint(msg)) => {
                assert!(msg.contains("delete the sidecars"), "{msg}");
            }
            other => panic!("expected checkpoint corruption, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trim_torn_tail_cuts_only_the_fragment() {
        let dir = std::env::temp_dir().join("cactid-explore-trim-test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("sidecar");

        std::fs::write(&p, "complete\ntorn-fragm").unwrap();
        trim_torn_tail(&p).unwrap();
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "complete\n");

        // Already clean (or missing): untouched.
        trim_torn_tail(&p).unwrap();
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "complete\n");
        trim_torn_tail(&dir.join("absent")).unwrap();

        // All fragment, no newline: emptied.
        std::fs::write(&p, "torn").unwrap();
        trim_torn_tail(&p).unwrap();
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_joins_both_sidecars() {
        let dir = std::env::temp_dir().join("cactid-explore-resume-test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("sweep.jsonl");
        let fp = 0xabcdu64;
        let mut ckpt = header(fp, 10);
        ckpt.push('\n');
        ckpt.push_str(&line(0, PointStatus::Ok, Some(&metrics())));
        ckpt.push('\n');
        ckpt.push_str(&line(1, PointStatus::Ok, Some(&metrics())));
        ckpt.push('\n');
        std::fs::write(ckpt_path(&out), ckpt).unwrap();
        // Point 1 missing from the part file (torn write): not resumed.
        // The stored pareto annotation on point 0 is stripped on load.
        std::fs::write(
            part_path(&out),
            "{\"idx\":0,\"status\":\"ok\",\"pareto\":{\"frontier\":false}}\n",
        )
        .unwrap();

        let m = load(&out, fp, 10).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m[&0].line, "{\"idx\":0,\"status\":\"ok\"}");
        assert_eq!(m[&0].status, PointStatus::Ok);
        assert!(m[&0].metrics.is_some());

        // Wrong fingerprint: loud failure.
        assert!(matches!(
            load(&out, fp + 1, 10),
            Err(ExploreError::Checkpoint(_))
        ));
        // Missing sidecars: fresh start.
        assert!(load(&dir.join("absent.jsonl"), fp, 10).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
