//! A hermetic work-claiming thread pool.
//!
//! The workspace is registry-dependency-free, so instead of rayon this
//! module provides the one scheduling primitive the engine needs: N scoped
//! `std::thread` workers claiming indices off a shared atomic cursor. Each
//! claim is a single `fetch_add`, which makes the queue naturally
//! work-stealing-balanced — a worker stuck on an expensive point simply
//! claims fewer subsequent points while its peers drain the rest.
//!
//! Completed results are handed to a sink callback under a mutex in
//! completion order; callers that need deterministic ordering (the engine's
//! final JSONL, [`parallel_map`]) place results into index-addressed slots.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// The number of worker threads to use when the caller does not care:
/// the machine's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Runs `work(i)` for every `i in 0..n` on `threads` workers and feeds each
/// result to `sink(i, result)` as it completes.
///
/// * `threads == 0` is taken as [`default_threads`]; the effective count is
///   clamped to `n`.
/// * `work` runs concurrently on the workers; `sink` runs under a mutex,
///   one call at a time, in completion order (not index order).
/// * With one effective thread everything runs on the caller's thread in
///   index order — no spawning, which keeps single-threaded runs exactly
///   deterministic and cheap.
pub fn run_indexed<R, W, S>(threads: usize, n: usize, work: W, mut sink: S)
where
    R: Send,
    W: Fn(usize) -> R + Sync,
    S: FnMut(usize, R) + Send,
{
    let threads = if threads == 0 {
        default_threads()
    } else {
        threads
    }
    .min(n.max(1));
    if threads <= 1 {
        for i in 0..n {
            cactid_obs::counter!("explore.pool.claims").inc();
            let t0 = Instant::now();
            let r = work(i);
            record_ns(cactid_obs::histogram!("explore.pool.work_ns"), t0);
            sink(i, r);
        }
        cactid_obs::histogram!("explore.pool.claims_per_worker").record(n as u64);
        return;
    }

    let cursor = AtomicUsize::new(0);
    let sink = Mutex::new(sink);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut claimed = 0u64;
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    claimed += 1;
                    cactid_obs::counter!("explore.pool.claims").inc();
                    let t0 = Instant::now();
                    let r = work(i);
                    let t1 = Instant::now();
                    cactid_obs::histogram!("explore.pool.work_ns").record(ns_between(t0, t1));
                    // Completion-order delivery serializes on this mutex;
                    // time spent queueing here is pool overhead, not work.
                    let mut sink = sink
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    record_ns(cactid_obs::histogram!("explore.pool.sink_wait_ns"), t1);
                    sink(i, r);
                }
                cactid_obs::histogram!("explore.pool.claims_per_worker").record(claimed);
            });
        }
    });
}

/// Nanoseconds elapsed from `t0`, saturating into `u64`.
fn ns_between(t0: Instant, t1: Instant) -> u64 {
    u64::try_from(t1.duration_since(t0).as_nanos()).unwrap_or(u64::MAX)
}

/// Records the nanoseconds elapsed since `t0` into `h`.
fn record_ns(h: &cactid_obs::Histogram, t0: Instant) {
    h.record(ns_between(t0, Instant::now()));
}

/// Maps `f` over `items` on `threads` workers, returning results in item
/// order regardless of completion order. `threads == 0` means
/// [`default_threads`].
pub fn parallel_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    run_indexed(
        threads,
        items.len(),
        |i| f(i, &items[i]),
        |i, r| slots[i] = Some(r),
    );
    slots
        .into_iter()
        .map(|s| s.unwrap_or_else(|| unreachable!("every index is claimed exactly once")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn every_index_is_claimed_exactly_once() {
        for threads in [1, 2, 8] {
            let calls = AtomicUsize::new(0);
            let mut seen = HashSet::new();
            run_indexed(
                threads,
                100,
                |i| {
                    calls.fetch_add(1, Ordering::Relaxed);
                    i * 3
                },
                |i, r| {
                    assert_eq!(r, i * 3);
                    assert!(seen.insert(i), "index {i} delivered twice");
                },
            );
            assert_eq!(calls.load(Ordering::Relaxed), 100);
            assert_eq!(seen.len(), 100);
        }
    }

    #[test]
    fn parallel_map_preserves_item_order() {
        let items: Vec<u64> = (0..257).collect();
        let seq: Vec<u64> = items.iter().map(|&x| x * x).collect();
        for threads in [0, 1, 3, 16] {
            assert_eq!(parallel_map(threads, &items, |_, &x| x * x), seq);
        }
    }

    #[test]
    fn empty_and_tiny_inputs_are_fine() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map::<u32, u32, _>(8, &empty, |_, &x| x).is_empty());
        assert_eq!(parallel_map(8, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn more_threads_than_items_is_clamped() {
        // Would deadlock or panic if workers raced past the queue end.
        let out = parallel_map(64, &[1u32, 2, 3], |i, &x| (i, x));
        assert_eq!(out, vec![(0, 1), (1, 2), (2, 3)]);
    }
}
