//! Grid definitions: declarative axes over the spec space, expanded into a
//! deterministic work queue of grid points.

use crate::error::ExploreError;
use crate::hash::{spec_fingerprint, Fnv1a};
use cactid_core::{AccessMode, CactiError, MemoryKind, MemorySpec, OptimizationOptions};
use cactid_tech::{CellTechnology, TechNode};

/// The engine refuses grids beyond this many points: at ~1 ms per solve a
/// million points is already a quarter CPU-hour, and anything bigger is a
/// sign the grid definition is wrong.
pub const MAX_POINTS: usize = 1 << 20;

/// A named optimization-knob variant — one value on the `opt` axis.
#[derive(Debug, Clone, PartialEq)]
pub struct OptVariant {
    /// Short label carried into every JSONL record (e.g. `"default"`,
    /// `"ed"`, `"c"`).
    pub label: String,
    /// The knob settings.
    pub opt: OptimizationOptions,
}

impl OptVariant {
    /// The paper's default knobs under the label `"default"`.
    pub fn default_variant() -> Self {
        OptVariant {
            label: "default".to_string(),
            opt: OptimizationOptions::default(),
        }
    }

    /// Looks up a named knob variant: `"default"`, plus the paper's §3.1
    /// `"ed"` (energy/delay-optimized mats) and `"c"` (capacity-optimized)
    /// settings. This is the single source of truth for the named variants
    /// the CLI `--opts` axis and the serve protocol accept; labels outside
    /// the table return `None`.
    pub fn named(label: &str) -> Option<Self> {
        let opt = match label {
            "default" => OptimizationOptions::default(),
            "ed" => OptimizationOptions {
                max_area_overhead: 0.60,
                max_access_time_overhead: 0.15,
                weight_dynamic: 1.5,
                weight_leakage: 0.3,
                weight_cycle: 2.0,
                weight_interleave: 1.0,
                ..OptimizationOptions::default()
            },
            "c" => OptimizationOptions {
                max_area_overhead: 0.20,
                max_access_time_overhead: 1.0,
                weight_dynamic: 0.5,
                weight_leakage: 1.0,
                weight_cycle: 0.3,
                weight_interleave: 0.3,
                ..OptimizationOptions::default()
            },
            _ => return None,
        };
        Some(OptVariant {
            label: label.to_string(),
            opt,
        })
    }
}

/// A declarative sweep grid: the cartesian product of its axes.
///
/// Axes follow the paper's §2.4 spec space — capacity, block size,
/// associativity, banks, technology node, cell technology and optimization
/// knobs. All points share one cache [`AccessMode`] (the engine models
/// cache sweeps; RAM and main-memory specs go through
/// [`cactid_core::optimize`] directly). Expansion order is fixed —
/// capacities outermost, then blocks, associativities, banks, nodes, cells
/// and opt variants innermost — so a grid always enumerates to the same
/// point indices.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    /// Total capacities in bytes.
    pub capacities: Vec<u64>,
    /// Cache-line sizes in bytes.
    pub blocks: Vec<u32>,
    /// Set associativities.
    pub associativities: Vec<u32>,
    /// Bank counts.
    pub banks: Vec<u32>,
    /// Technology nodes.
    pub nodes: Vec<TechNode>,
    /// Cell technologies.
    pub cells: Vec<CellTechnology>,
    /// Named optimization-knob variants.
    pub opts: Vec<OptVariant>,
    /// Tag/data access ordering shared by every point.
    pub access_mode: AccessMode,
}

impl Default for Grid {
    fn default() -> Self {
        Grid::new()
    }
}

impl Grid {
    /// A grid with every axis at its single most common value — except
    /// `capacities`, which starts empty and must be filled in.
    pub fn new() -> Self {
        Grid {
            capacities: Vec::new(),
            blocks: vec![64],
            associativities: vec![8],
            banks: vec![1],
            nodes: vec![TechNode::N32],
            cells: vec![CellTechnology::Sram],
            opts: vec![OptVariant::default_variant()],
            access_mode: AccessMode::Normal,
        }
    }

    /// The number of points the grid expands to (`0` if any axis is empty).
    pub fn len(&self) -> usize {
        self.capacities.len()
            * self.blocks.len()
            * self.associativities.len()
            * self.banks.len()
            * self.nodes.len()
            * self.cells.len()
            * self.opts.len()
    }

    /// `true` when any axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn check_axes(&self) -> Result<(), ExploreError> {
        let axes: [(&'static str, usize); 7] = [
            ("capacities", self.capacities.len()),
            ("blocks", self.blocks.len()),
            ("associativities", self.associativities.len()),
            ("banks", self.banks.len()),
            ("nodes", self.nodes.len()),
            ("cells", self.cells.len()),
            ("opts", self.opts.len()),
        ];
        for (name, len) in axes {
            if len == 0 {
                return Err(ExploreError::EmptyAxis(name));
            }
        }
        let points = self.len();
        if points > MAX_POINTS {
            return Err(ExploreError::TooManyPoints {
                points,
                max: MAX_POINTS,
            });
        }
        Ok(())
    }

    /// Expands the grid into its points, in the fixed axis-nesting order,
    /// and computes the grid fingerprint the checkpoint format uses to
    /// detect definition changes across resumes.
    ///
    /// Axis combinations that fail [`MemorySpec`] validation become points
    /// with an `Err` spec (reported as `status:"invalid"` records) rather
    /// than aborting the sweep — a grid legitimately mixes, say, block
    /// sizes that only some capacities divide by.
    ///
    /// # Errors
    ///
    /// [`ExploreError::EmptyAxis`] if an axis has no values, or
    /// [`ExploreError::TooManyPoints`] past [`MAX_POINTS`].
    pub fn expand(&self) -> Result<Expansion, ExploreError> {
        self.check_axes()?;
        let mut points = Vec::with_capacity(self.len());
        let mut h = Fnv1a::new();
        h.write_u64(self.len() as u64);
        for &capacity_bytes in &self.capacities {
            for &block_bytes in &self.blocks {
                for &associativity in &self.associativities {
                    for &banks in &self.banks {
                        for &node in &self.nodes {
                            for &cell in &self.cells {
                                for variant in &self.opts {
                                    let spec = MemorySpec::builder()
                                        .capacity_bytes(capacity_bytes)
                                        .block_bytes(block_bytes)
                                        .associativity(associativity)
                                        .banks(banks)
                                        .cell_tech(cell)
                                        .node(node)
                                        .kind(MemoryKind::Cache {
                                            access_mode: self.access_mode,
                                        })
                                        .optimization(variant.opt.clone())
                                        .build();
                                    let point = GridPoint {
                                        idx: points.len(),
                                        capacity_bytes,
                                        block_bytes,
                                        associativity,
                                        banks,
                                        node,
                                        cell,
                                        access_mode: self.access_mode,
                                        opt_label: variant.label.clone(),
                                        spec,
                                    };
                                    point.write_fingerprint(&mut h);
                                    points.push(point);
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(Expansion {
            points,
            fingerprint: h.finish(),
        })
    }
}

/// One expanded grid point: the raw axis values (kept for record rendering
/// even when the combination is invalid) plus the validated spec.
#[derive(Debug, Clone)]
pub struct GridPoint {
    /// Position in the expansion order; the record index in the JSONL.
    pub idx: usize,
    /// Capacity axis value \[bytes\].
    pub capacity_bytes: u64,
    /// Block-size axis value \[bytes\].
    pub block_bytes: u32,
    /// Associativity axis value.
    pub associativity: u32,
    /// Bank-count axis value.
    pub banks: u32,
    /// Node axis value.
    pub node: TechNode,
    /// Cell-technology axis value.
    pub cell: CellTechnology,
    /// The grid's shared access mode.
    pub access_mode: AccessMode,
    /// Label of the opt variant this point uses.
    pub opt_label: String,
    /// The validated spec, or why the combination is invalid.
    pub spec: Result<MemorySpec, CactiError>,
}

impl GridPoint {
    /// The memoization key for this point's spec, if valid.
    pub fn fingerprint(&self) -> Option<u64> {
        self.spec.as_ref().ok().map(spec_fingerprint)
    }

    fn write_fingerprint(&self, h: &mut Fnv1a) {
        // Raw axis values + label, so the grid fingerprint changes whenever
        // the definition does — even for combinations that fail validation
        // (a changed invalid combination still shifts every point index).
        h.write_u64(self.capacity_bytes);
        h.write_u32(self.block_bytes);
        h.write_u32(self.associativity);
        h.write_u32(self.banks);
        h.write_u32(self.node.feature_nm() as u32);
        h.write(self.opt_label.as_bytes());
        h.write_u8(0); // label terminator
        if let Ok(spec) = &self.spec {
            h.write_u64(spec_fingerprint(spec));
        } else {
            h.write_u8(0xff);
        }
    }
}

/// A fully expanded grid: the points plus the definition fingerprint.
#[derive(Debug, Clone)]
pub struct Expansion {
    /// The points, indexed by `idx`.
    pub points: Vec<GridPoint>,
    /// FNV-1a fingerprint of the whole definition; checkpoints carry it.
    pub fingerprint: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_grid() -> Grid {
        let mut g = Grid::new();
        g.capacities = vec![64 << 10, 128 << 10];
        g.associativities = vec![4, 8];
        g
    }

    #[test]
    fn expansion_order_is_fixed_and_indexed() {
        let e = small_grid().expand().unwrap();
        assert_eq!(e.points.len(), 4);
        for (i, p) in e.points.iter().enumerate() {
            assert_eq!(p.idx, i);
            assert!(p.spec.is_ok());
        }
        // Capacities outermost, associativities inner.
        assert_eq!(e.points[0].capacity_bytes, 64 << 10);
        assert_eq!(e.points[0].associativity, 4);
        assert_eq!(e.points[1].associativity, 8);
        assert_eq!(e.points[2].capacity_bytes, 128 << 10);
    }

    #[test]
    fn fingerprint_tracks_the_definition() {
        let base = small_grid().expand().unwrap().fingerprint;
        assert_eq!(base, small_grid().expand().unwrap().fingerprint);
        let mut g = small_grid();
        g.capacities.push(256 << 10);
        assert_ne!(base, g.expand().unwrap().fingerprint);
        let mut g = small_grid();
        g.opts[0].label = "renamed".to_string();
        assert_ne!(base, g.expand().unwrap().fingerprint);
    }

    #[test]
    fn invalid_combinations_become_invalid_points() {
        let mut g = small_grid();
        // 48 KB is not a power-of-two set count at 64 B × 4/8 ways.
        g.capacities = vec![48 << 10, 64 << 10];
        let e = g.expand().unwrap();
        assert_eq!(e.points.len(), 4);
        assert!(e.points[0].spec.is_err() && e.points[1].spec.is_err());
        assert!(e.points[2].spec.is_ok() && e.points[3].spec.is_ok());
    }

    #[test]
    fn empty_axis_is_reported_by_name() {
        let g = Grid::new(); // capacities empty
        assert_eq!(
            g.expand().unwrap_err(),
            ExploreError::EmptyAxis("capacities")
        );
        assert!(g.is_empty());
    }

    #[test]
    fn oversized_grid_is_rejected() {
        let mut g = small_grid();
        g.capacities = (0..2048).map(|i| (i + 1) << 10).collect();
        g.associativities = (0..1024).map(|i| i + 1).collect();
        assert!(matches!(
            g.expand().unwrap_err(),
            ExploreError::TooManyPoints { .. }
        ));
    }
}
