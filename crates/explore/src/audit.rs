//! Whole-grid static feasibility analysis: classify every point of a grid
//! *before* any solve.
//!
//! The audit expands the grid, groups points by spec fingerprint exactly
//! like the engine does, and runs [`cactid_core::static_screen`] once per
//! unique spec. The screen replays the engine's own exact closed-form
//! rejection paths — the spec-stage design tag plus the per-organization
//! prescreen (subarray height, wordline Elmore bound, DRAM sense margin) —
//! so an [`AuditVerdict::Infeasible`] verdict is a *proof* that the solve
//! would fail, while [`AuditVerdict::MaybeFeasible`] is one-sided: the
//! solve can still fail for reasons only full evaluation sees (e.g. a
//! non-finite objective at selection).
//!
//! The same screen backs the engine's `audit` switch
//! ([`crate::ExploreConfig::audit`]), which skips statically-doomed points
//! without changing a byte of the output JSONL.

use crate::error::ExploreError;
use crate::grid::Grid;
use cactid_core::{static_screen, ScreenHistogram, ScreenVerdict};
use std::collections::HashMap;
use std::fmt::Write as _;

/// The static classification of one grid point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditVerdict {
    /// The axis combination fails spec validation (the engine would emit
    /// an `invalid` record).
    Invalid,
    /// Statically proven infeasible: the engine would emit an
    /// `infeasible` record without finding any candidate.
    Infeasible,
    /// Survived every static check; the solve may still fail.
    MaybeFeasible,
}

impl AuditVerdict {
    /// Stable lowercase label for records and the CLI.
    pub fn as_str(self) -> &'static str {
        match self {
            AuditVerdict::Invalid => "invalid",
            AuditVerdict::Infeasible => "infeasible",
            AuditVerdict::MaybeFeasible => "maybe-feasible",
        }
    }
}

/// One audited grid point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointAudit {
    /// Grid-point index.
    pub idx: usize,
    /// The static classification.
    pub verdict: AuditVerdict,
    /// The error message proving the verdict, for `Invalid` and
    /// `Infeasible` points.
    pub detail: Option<String>,
}

/// What a whole-grid audit found.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditReport {
    /// One verdict per grid point, in index order.
    pub points: Vec<PointAudit>,
    /// Distinct spec fingerprints among the valid points (equals the
    /// number of `static_screen` calls made).
    pub unique_specs: usize,
    /// Points whose axis combination fails spec validation.
    pub invalid: usize,
    /// Points statically proven infeasible.
    pub infeasible: usize,
    /// Points that survived the screen.
    pub maybe_feasible: usize,
    /// Unique specs rejected before any organization was enumerated
    /// (cache design-tag failure at the spec stage).
    pub spec_stage_rejected: usize,
    /// Organization-level prescreen failures summed over every screened
    /// unique spec, by rule. A spec is statically infeasible exactly when
    /// *all* its organizations land here (or it was rejected at the spec
    /// stage).
    pub reasons: ScreenHistogram,
    /// Organizations enumerated across all screens.
    pub orgs_screened: usize,
}

impl AuditReport {
    /// Renders the human summary the CLI prints, ending with the
    /// per-rule infeasibility histogram.
    pub fn render(&self) -> String {
        let mut out = format!(
            "cactid-audit: {} points ({} unique specs), {} organizations screened\n  \
             verdicts: {} maybe-feasible, {} statically infeasible, {} invalid\n  \
             infeasibility histogram (organizations rejected per rule):\n",
            self.points.len(),
            self.unique_specs,
            self.orgs_screened,
            self.maybe_feasible,
            self.infeasible,
            self.invalid,
        );
        for (label, count) in self.reasons.entries() {
            let _ = writeln!(out, "    {label:<16} {count}");
        }
        let _ = write!(
            out,
            "    {:<16} {} specs",
            "spec-stage", self.spec_stage_rejected
        );
        out
    }
}

/// Statically classifies every point of `grid` without calling the
/// solver. See the module docs for the verdict semantics.
///
/// # Errors
///
/// The same expansion errors as [`crate::explore`]
/// ([`ExploreError::EmptyAxis`], [`ExploreError::TooManyPoints`]);
/// per-point failures become verdicts, never errors.
pub fn audit(grid: &Grid) -> Result<AuditReport, ExploreError> {
    let _span = cactid_obs::span("explore.audit");
    let expansion = grid.expand()?;
    let points = &expansion.points;
    let mut report = AuditReport::default();
    let mut verdicts: Vec<Option<PointAudit>> = vec![None; points.len()];

    // Group valid points by spec fingerprint (collisions resolved by spec
    // equality), mirroring the engine's job grouping.
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut group_of: HashMap<u64, Vec<usize>> = HashMap::new();
    for point in points {
        match (&point.spec, point.fingerprint()) {
            (Ok(spec), Some(fp)) => {
                let bucket = group_of.entry(fp).or_default();
                let existing = bucket
                    .iter()
                    .copied()
                    .find(|&g| points[groups[g][0]].spec.as_ref().ok() == Some(spec));
                match existing {
                    Some(g) => groups[g].push(point.idx),
                    None => {
                        bucket.push(groups.len());
                        groups.push(vec![point.idx]);
                    }
                }
            }
            _ => {
                let err = point.spec.as_ref().expect_err("no fingerprint means Err");
                report.invalid += 1;
                verdicts[point.idx] = Some(PointAudit {
                    idx: point.idx,
                    verdict: AuditVerdict::Invalid,
                    detail: Some(err.to_string()),
                });
            }
        }
    }
    report.unique_specs = groups.len();

    for group in groups {
        let Ok(spec) = points[group[0]].spec.as_ref() else {
            unreachable!("grouped specs are valid")
        };
        let screen = static_screen(spec);
        report.orgs_screened += screen.stats.orgs_enumerated;
        report.reasons.merge(&screen.reasons);
        let (verdict, detail) = match screen.verdict {
            ScreenVerdict::Infeasible(err) => {
                report.infeasible += group.len();
                if screen.stats.orgs_enumerated == 0 {
                    report.spec_stage_rejected += 1;
                }
                (AuditVerdict::Infeasible, Some(err.to_string()))
            }
            ScreenVerdict::MaybeFeasible { .. } => {
                report.maybe_feasible += group.len();
                (AuditVerdict::MaybeFeasible, None)
            }
        };
        for idx in group {
            verdicts[idx] = Some(PointAudit {
                idx,
                verdict,
                detail: detail.clone(),
            });
        }
    }

    report.points = verdicts
        .into_iter()
        .map(|v| v.unwrap_or_else(|| unreachable!("every point is classified")))
        .collect();
    cactid_obs::counter!("explore.audit.points").add(report.points.len() as u64);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feasible_grid_is_all_maybe_feasible() {
        let mut g = Grid::new();
        g.capacities = vec![64 << 10, 128 << 10];
        g.associativities = vec![4, 8];
        let report = audit(&g).unwrap();
        assert_eq!(report.points.len(), 4);
        assert_eq!(report.maybe_feasible, 4);
        assert_eq!(report.invalid, 0);
        assert_eq!(report.infeasible, 0);
        assert_eq!(report.unique_specs, 4);
        assert!(report.orgs_screened > 0);
        assert!(report
            .points
            .iter()
            .all(|p| p.verdict == AuditVerdict::MaybeFeasible && p.detail.is_none()));
    }

    #[test]
    fn invalid_combinations_are_classified_without_screening() {
        let mut g = Grid::new();
        g.capacities = vec![48 << 10]; // 48 KB: 768 sets, not a power of two
        let report = audit(&g).unwrap();
        assert_eq!(report.invalid, 1);
        assert_eq!(report.unique_specs, 0);
        assert_eq!(report.points[0].verdict, AuditVerdict::Invalid);
        assert!(report.points[0].detail.is_some());
    }

    #[test]
    fn render_carries_the_histogram_marker() {
        let g = {
            let mut g = Grid::new();
            g.capacities = vec![64 << 10];
            g
        };
        let text = audit(&g).unwrap().render();
        assert!(text.contains("infeasibility histogram"), "{text}");
        assert!(text.contains("subarray-rows"), "{text}");
        assert!(text.contains("spec-stage"), "{text}");
    }

    #[test]
    fn verdict_labels_are_stable() {
        assert_eq!(AuditVerdict::Invalid.as_str(), "invalid");
        assert_eq!(AuditVerdict::Infeasible.as_str(), "infeasible");
        assert_eq!(AuditVerdict::MaybeFeasible.as_str(), "maybe-feasible");
    }
}
