//! Pareto-frontier extraction over the four paper objectives.
//!
//! A solved point is on the frontier iff no other point is at least as good
//! on all four of (access time, dynamic read energy, area, leakage +
//! refresh power) and strictly better on at least one — the classic
//! dominance relation, minimizing every objective. The engine annotates
//! every `ok` record with its frontier membership and, for frontier points,
//! the number of points it dominates.

/// The four objective values of one solved point, in SI units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoMetrics {
    /// End-to-end access time \[s\].
    pub access_s: f64,
    /// Dynamic read energy per access \[J\].
    pub read_j: f64,
    /// Total area \[m²\].
    pub area_m2: f64,
    /// Leakage + refresh power \[W\].
    pub leakage_w: f64,
}

impl ParetoMetrics {
    fn axes(&self) -> [f64; 4] {
        [self.access_s, self.read_j, self.area_m2, self.leakage_w]
    }

    /// `true` iff every objective is a finite number. Non-finite points are
    /// excluded from frontier extraction: NaN fails every comparison, so a
    /// NaN point would be "never dominated" and pollute the frontier, while
    /// a `-inf` point would spuriously dominate every real solution.
    pub fn is_finite(&self) -> bool {
        self.axes().iter().all(|v| v.is_finite())
    }

    /// `true` iff `self` dominates `other`: no worse on every objective and
    /// strictly better on at least one.
    pub fn dominates(&self, other: &ParetoMetrics) -> bool {
        let (a, b) = (self.axes(), other.axes());
        let mut strictly = false;
        for i in 0..4 {
            if a[i] > b[i] {
                return false;
            }
            strictly |= a[i] < b[i];
        }
        strictly
    }
}

/// One frontier member.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoPoint {
    /// Grid-point index of the frontier member.
    pub idx: usize,
    /// How many solved points this one dominates.
    pub dominates: usize,
    /// The member's objective values.
    pub metrics: ParetoMetrics,
}

/// Extracts the Pareto frontier of `(idx, metrics)` points, returned in
/// ascending `idx` order. O(n²) pairwise dominance, which at the engine's
/// grid sizes (≤ [`crate::grid::MAX_POINTS`]) is never the bottleneck next
/// to the solves themselves.
///
/// Points with any non-finite objective ([`ParetoMetrics::is_finite`]) take
/// no part in the computation: they cannot join the frontier, dominate, or
/// be dominated. Callers surface them separately (the engine counts them in
/// its stats and the CD0021/CD0022 lints flag the underlying solutions).
pub fn frontier(points: &[(usize, ParetoMetrics)]) -> Vec<ParetoPoint> {
    let points: Vec<&(usize, ParetoMetrics)> =
        points.iter().filter(|(_, m)| m.is_finite()).collect();
    let mut out = Vec::new();
    for (i, (idx, m)) in points.iter().enumerate() {
        let mut dominated = false;
        let mut dominates = 0usize;
        for (j, (_, other)) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            if other.dominates(m) {
                dominated = true;
                break;
            }
            if m.dominates(other) {
                dominates += 1;
            }
        }
        if !dominated {
            out.push(ParetoPoint {
                idx: *idx,
                dominates,
                metrics: *m,
            });
        }
    }
    out.sort_by_key(|p| p.idx);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(access: f64, energy: f64, area: f64, leak: f64) -> ParetoMetrics {
        ParetoMetrics {
            access_s: access,
            read_j: energy,
            area_m2: area,
            leakage_w: leak,
        }
    }

    #[test]
    fn dominance_requires_strict_improvement_somewhere() {
        let a = m(1.0, 1.0, 1.0, 1.0);
        assert!(!a.dominates(&a));
        assert!(m(0.5, 1.0, 1.0, 1.0).dominates(&a));
        assert!(!m(0.5, 2.0, 1.0, 1.0).dominates(&a), "worse on energy");
    }

    #[test]
    fn frontier_of_a_chain_is_its_minimum() {
        let pts: Vec<(usize, ParetoMetrics)> = (0..5)
            .map(|i| {
                let v = 1.0 + i as f64;
                (i, m(v, v, v, v))
            })
            .collect();
        let f = frontier(&pts);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].idx, 0);
        assert_eq!(f[0].dominates, 4);
    }

    #[test]
    fn trade_off_points_all_survive() {
        // Three points trading access time against energy; none dominates.
        let pts = vec![
            (10, m(1.0, 3.0, 1.0, 1.0)),
            (11, m(2.0, 2.0, 1.0, 1.0)),
            (12, m(3.0, 1.0, 1.0, 1.0)),
        ];
        let f = frontier(&pts);
        assert_eq!(f.iter().map(|p| p.idx).collect::<Vec<_>>(), [10, 11, 12]);
        assert!(f.iter().all(|p| p.dominates == 0));
    }

    #[test]
    fn duplicates_neither_dominate_nor_vanish() {
        let pts = vec![(0, m(1.0, 1.0, 1.0, 1.0)), (1, m(1.0, 1.0, 1.0, 1.0))];
        let f = frontier(&pts);
        assert_eq!(f.len(), 2, "equal points do not dominate each other");
    }

    #[test]
    fn empty_input_yields_empty_frontier() {
        assert!(frontier(&[]).is_empty());
    }

    #[test]
    fn nan_points_neither_join_nor_shadow_the_frontier() {
        // NaN fails all comparisons: unguarded, the NaN point would be
        // "never dominated" and land on the frontier.
        let pts = vec![
            (0, m(f64::NAN, 1.0, 1.0, 1.0)),
            (1, m(2.0, 2.0, 2.0, 2.0)),
            (2, m(1.0, 1.0, 1.0, f64::NAN)),
        ];
        let f = frontier(&pts);
        assert_eq!(f.iter().map(|p| p.idx).collect::<Vec<_>>(), [1]);
        assert_eq!(f[0].dominates, 0, "NaN points are not dominated either");
    }

    #[test]
    fn negative_infinity_cannot_dominate_real_points() {
        // Unguarded, -inf beats every finite value on its axis and would
        // wipe out the whole real frontier.
        let pts = vec![
            (0, m(f64::NEG_INFINITY, 0.0, 0.0, 0.0)),
            (1, m(1.0, 1.0, 1.0, 1.0)),
            (2, m(f64::INFINITY, 1.0, 1.0, 1.0)),
        ];
        let f = frontier(&pts);
        assert_eq!(f.iter().map(|p| p.idx).collect::<Vec<_>>(), [1]);
    }

    #[test]
    fn is_finite_checks_every_axis() {
        assert!(m(1.0, 1.0, 1.0, 1.0).is_finite());
        assert!(!m(f64::NAN, 1.0, 1.0, 1.0).is_finite());
        assert!(!m(1.0, f64::INFINITY, 1.0, 1.0).is_finite());
        assert!(!m(1.0, 1.0, f64::NEG_INFINITY, 1.0).is_finite());
        assert!(!m(1.0, 1.0, 1.0, f64::NAN).is_finite());
    }
}
