//! A solve memo keyed by canonical spec fingerprints.
//!
//! Exploration grids routinely contain duplicate specs (two opt variants
//! with identical knobs, overlapping sub-sweeps) and study configurations
//! re-optimize the same L1/L2 specs many times over. [`SolveCache`] makes
//! every distinct spec cost one solve: entries are keyed by
//! [`crate::hash::spec_fingerprint`] and verified by full spec equality on
//! lookup, so a 64-bit collision degrades to a miss instead of a wrong
//! answer.
//!
//! The solve itself runs with the mutex *released* — only lookup and
//! insert take the lock — so concurrent workers memoize without
//! serializing on each other. Two threads racing on the same cold spec may
//! both solve it; the first insert wins and both observe the same entry
//! (solves are deterministic). The exploration engine avoids even that
//! duplicated work by pre-grouping its points per fingerprint.

use crate::hash::spec_fingerprint;
use cactid_core::{select, solve_with_stats, CactiError, MemorySpec, Solution};
use cactid_core::{SolutionLinter, SolveStats};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// One memoized solve: the §2.4 winner (or why there is none) plus the
/// sweep counters of producing it.
#[derive(Debug, Clone)]
pub struct CachedSolve {
    /// The selected winner, or the solve/select failure.
    pub result: Result<Solution, CactiError>,
    /// Counters from the underlying organization sweep.
    pub stats: SolveStats,
}

/// A thread-safe solve memo. See the module docs for the locking contract.
///
/// A cache instance must not be shared between *different* linter
/// configurations: the linter participates in the solve but not in the
/// key. The exploration engine owns a private cache per run (one fixed
/// linter), and the process-global cache behind [`optimize_cached`] is
/// always lint-free.
#[derive(Debug, Default)]
pub struct SolveCache {
    map: Mutex<HashMap<u64, Vec<(MemorySpec, CachedSolve)>>>,
}

impl SolveCache {
    /// An empty cache.
    pub fn new() -> Self {
        SolveCache::default()
    }

    /// The process-global cache used by [`optimize_cached`].
    pub fn global() -> &'static SolveCache {
        static GLOBAL: OnceLock<SolveCache> = OnceLock::new();
        GLOBAL.get_or_init(SolveCache::new)
    }

    /// The number of memoized specs.
    pub fn len(&self) -> usize {
        self.map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .values()
            .map(Vec::len)
            .sum()
    }

    /// `true` when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (benchmarks use this to re-run cold).
    pub fn clear(&self) {
        self.map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
    }

    fn lookup(&self, key: u64, spec: &MemorySpec) -> Option<CachedSolve> {
        let map = self
            .map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        map.get(&key)
            .and_then(|bucket| bucket.iter().find(|(s, _)| s == spec))
            .map(|(_, entry)| entry.clone())
    }

    /// Solves `spec` (solve → §2.4 select) through the memo. Returns the
    /// entry and whether it was served from cache.
    pub fn solve_point(
        &self,
        spec: &MemorySpec,
        linter: Option<&dyn SolutionLinter>,
    ) -> (CachedSolve, bool) {
        let key = spec_fingerprint(spec);
        if let Some(hit) = self.lookup(key, spec) {
            cactid_obs::counter!("explore.cache.hits").inc();
            return (hit, true);
        }
        cactid_obs::counter!("explore.cache.misses").inc();
        // Solve outside the lock; expensive points must not serialize the
        // rest of the pool.
        let outcome = solve_with_stats(spec, linter);
        let entry = CachedSolve {
            result: outcome.result.and_then(|sols| select(spec, &sols)),
            stats: outcome.stats,
        };
        let mut map = self
            .map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let bucket = map.entry(key).or_default();
        if let Some((_, first)) = bucket.iter().find(|(s, _)| s == spec) {
            // Lost a cold-spec race; keep the first insert so every caller
            // observes one entry.
            cactid_obs::counter!("explore.cache.cold_races").inc();
            return (first.clone(), true);
        }
        if !bucket.is_empty() {
            // Same 64-bit fingerprint, different spec: equality verification
            // turned a would-be wrong answer into a plain miss.
            cactid_obs::counter!("explore.cache.collisions").inc();
        }
        bucket.push((spec.clone(), entry.clone()));
        (entry, false)
    }
}

/// [`cactid_core::optimize`] through an explicit, caller-owned memo: the
/// first call per distinct spec solves, every later call against the same
/// `cache` is a lookup. This is the injectable form — the exploration
/// engine ([`crate::ExploreConfig::cache`]), study drivers, and long-lived
/// services each pass the handle they want shared, instead of implicitly
/// coupling through process state. Pass [`SolveCache::global`] to get the
/// old process-wide sharing behavior explicitly.
///
/// The cache must only ever see lint-free solves (this function passes no
/// linter); see the [`SolveCache`] docs for the sharing contract.
///
/// # Errors
///
/// Exactly those of [`cactid_core::optimize`].
pub fn optimize_cached_in(cache: &SolveCache, spec: &MemorySpec) -> Result<Solution, CactiError> {
    cache.solve_point(spec, None).0.result
}

/// [`cactid_core::optimize`] through the process-global memo.
///
/// Thin shim over [`optimize_cached_in`] with [`SolveCache::global`];
/// kept so pre-existing call sites keep compiling and behaving
/// identically, but new code should take a [`SolveCache`] handle
/// explicitly — implicit process-global state is impossible to scope,
/// reset, or share across a service boundary deliberately. No longer
/// re-exported at the crate root; this shim is slated for removal once
/// no in-tree caller names it, and is hidden from the rendered docs so
/// it cannot attract new callers in the meantime.
///
/// # Errors
///
/// Exactly those of [`cactid_core::optimize`].
#[doc(hidden)]
#[deprecated(note = "pass a cache handle: `optimize_cached_in(SolveCache::global(), spec)`")]
pub fn optimize_cached(spec: &MemorySpec) -> Result<Solution, CactiError> {
    optimize_cached_in(SolveCache::global(), spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cactid_core::{optimize, AccessMode, MemoryKind};
    use cactid_tech::{CellTechnology, TechNode};

    fn spec(capacity: u64) -> MemorySpec {
        MemorySpec::builder()
            .capacity_bytes(capacity)
            .block_bytes(64)
            .associativity(4)
            .banks(1)
            .cell_tech(CellTechnology::Sram)
            .node(TechNode::N32)
            .kind(MemoryKind::Cache {
                access_mode: AccessMode::Normal,
            })
            .build()
            .unwrap()
    }

    #[test]
    fn second_solve_is_a_hit_with_identical_result() {
        let cache = SolveCache::new();
        let s = spec(64 << 10);
        let (a, hit_a) = cache.solve_point(&s, None);
        let (b, hit_b) = cache.solve_point(&s, None);
        assert!(!hit_a && hit_b);
        assert_eq!(cache.len(), 1);
        assert_eq!(a.result.unwrap(), b.result.unwrap());
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn cached_winner_matches_optimize() {
        let s = spec(128 << 10);
        let via_cache = optimize_cached_in(SolveCache::global(), &s).unwrap();
        assert_eq!(via_cache, optimize(&s).unwrap());
        // And the global memo now serves it without re-solving.
        let (_, hit) = SolveCache::global().solve_point(&s, None);
        assert!(hit);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_global_shim_still_routes_through_the_global_memo() {
        let s = spec(256 << 10);
        let via_shim = optimize_cached(&s).unwrap();
        assert_eq!(
            via_shim,
            optimize_cached_in(SolveCache::global(), &s).unwrap()
        );
        let (_, hit) = SolveCache::global().solve_point(&s, None);
        assert!(hit, "the shim populated the global cache");
    }

    #[test]
    fn injectable_handles_are_independent() {
        let a = SolveCache::new();
        let b = SolveCache::new();
        let s = spec(64 << 10);
        optimize_cached_in(&a, &s).unwrap();
        assert_eq!(a.len(), 1);
        assert!(b.is_empty(), "separate handles share nothing");
        let (_, hit) = b.solve_point(&s, None);
        assert!(!hit);
    }

    #[test]
    fn cache_handle_is_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SolveCache>();
    }

    #[test]
    fn clear_makes_the_next_solve_cold() {
        let cache = SolveCache::new();
        let s = spec(64 << 10);
        cache.solve_point(&s, None);
        cache.clear();
        assert!(cache.is_empty());
        let (_, hit) = cache.solve_point(&s, None);
        assert!(!hit);
    }

    #[test]
    fn distinct_specs_get_distinct_entries() {
        let cache = SolveCache::new();
        let (a, _) = cache.solve_point(&spec(64 << 10), None);
        let (b, _) = cache.solve_point(&spec(128 << 10), None);
        assert_eq!(cache.len(), 2);
        assert_ne!(a.result.unwrap().area, b.result.unwrap().area);
    }
}
