//! A minimal JSON emitter.
//!
//! The workspace takes no registry dependencies, so the engine's JSONL
//! records are rendered with this ~100-line emitter instead of serde. Only
//! what the records need is implemented: objects, strings, integers and
//! floats. Floats are formatted with Rust's shortest-round-trip `Display`,
//! which both parses back to the identical bit pattern and renders
//! identically across runs — the property the byte-identical-output
//! guarantee of the engine rests on.

use std::fmt::Write;

/// Escapes a string for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (shortest round-trip decimal);
/// non-finite values render as `null`, which JSON numbers cannot express.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// An in-progress JSON object (`{...}`) built field by field.
#[derive(Debug, Clone)]
pub struct JsonObject {
    buf: String,
    first: bool,
}

impl Default for JsonObject {
    fn default() -> Self {
        JsonObject::new()
    }
}

impl JsonObject {
    /// Opens an object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        let _ = write!(self.buf, "\"{}\":", escape(k));
    }

    /// Adds a string field.
    pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "\"{}\"", escape(v));
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Adds a float field (shortest round-trip formatting).
    pub fn f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        self.buf.push_str(&fmt_f64(v));
        self
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a pre-rendered JSON value (e.g. a nested object) verbatim.
    pub fn raw(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    /// Closes the object and returns the rendered JSON.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_fields_in_insertion_order() {
        let mut o = JsonObject::new();
        o.u64("idx", 3)
            .str("status", "ok")
            .f64("x", 0.25)
            .bool("flag", true)
            .raw("org", "{\"ndwl\":2}");
        assert_eq!(
            o.finish(),
            "{\"idx\":3,\"status\":\"ok\",\"x\":0.25,\"flag\":true,\"org\":{\"ndwl\":2}}"
        );
    }

    #[test]
    fn escapes_specials_and_controls() {
        assert_eq!(escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn floats_round_trip_through_their_rendering() {
        for v in [1.0, 0.1, 1e-300, 2.5e-10, f64::MIN_POSITIVE, 123456.789] {
            let s = fmt_f64(v);
            assert_eq!(s.parse::<f64>().unwrap().to_bits(), v.to_bits(), "{s}");
        }
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }

    #[test]
    fn empty_object() {
        assert_eq!(JsonObject::new().finish(), "{}");
    }
}
