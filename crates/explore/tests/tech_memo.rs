//! The per-node technology memo, observed end to end.
//!
//! This lives in its own integration binary so no other test in the
//! process constructs a `Technology` and skews the counter: across a
//! 100-point single-node grid on four workers, the Table-1 derivation must
//! run exactly once.

use cactid_explore::{explore, ExploreConfig, Grid};
use cactid_tech::Technology;

#[test]
fn hundred_point_single_node_grid_builds_technology_once() {
    let mut g = Grid::new();
    g.capacities = vec![32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10];
    g.associativities = vec![2, 4, 8, 16];
    g.blocks = vec![16, 32, 64, 128, 256];
    assert_eq!(g.len(), 100);

    let config = ExploreConfig {
        threads: 4,
        ..ExploreConfig::default()
    };
    let report = explore(&g, &config).unwrap();
    assert_eq!(report.stats.points, 100);
    assert!(report.stats.ok > 50, "most of the grid should solve");
    assert_eq!(
        report.stats.tech_constructions, 1,
        "one node, one Technology construction"
    );
    assert_eq!(Technology::constructions(), 1);

    // A second sweep over the same node is fully served by the memo.
    let again = explore(&g, &config).unwrap();
    assert_eq!(again.stats.tech_constructions, 0);
    assert_eq!(Technology::constructions(), 1);
}
