//! Resume semantics: interrupted sweeps pick up where they left off and
//! still produce the exact file an uninterrupted run would have.

use cactid_explore::{explore, ExploreConfig, ExploreError, Grid};
use std::path::{Path, PathBuf};

fn grid() -> Grid {
    let mut g = Grid::new();
    g.capacities = vec![32 << 10, 64 << 10, 128 << 10];
    g.associativities = vec![2, 4];
    g
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("cactid-explore-resume")
        .join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config(out: &Path, resume: bool) -> ExploreConfig<'_> {
    ExploreConfig {
        threads: 2,
        out: Some(out),
        resume,
        pareto: true,
        ..ExploreConfig::default()
    }
}

#[test]
fn interrupted_run_resumes_without_resolving_completed_points() {
    let dir = tmp_dir("interrupt");
    let out = dir.join("sweep.jsonl");
    let full = explore(&grid(), &config(&out, false)).unwrap();
    assert_eq!(full.stats.solved, 6);
    let reference = std::fs::read_to_string(&out).unwrap();

    // Simulate an interrupt: keep only the first two streamed records.
    std::fs::remove_file(&out).unwrap();
    let part = dir.join("sweep.jsonl.part");
    let kept: String = std::fs::read_to_string(&part)
        .unwrap()
        .lines()
        .take(2)
        .map(|l| format!("{l}\n"))
        .collect();
    std::fs::write(&part, kept).unwrap();

    let resumed = explore(&grid(), &config(&out, true)).unwrap();
    assert_eq!(resumed.stats.resumed, 2);
    assert_eq!(resumed.stats.solved, 4, "only the lost points re-solve");
    assert!(resumed.stats.balanced());
    assert_eq!(std::fs::read_to_string(&out).unwrap(), reference);
}

#[test]
fn resuming_a_complete_run_solves_zero_points() {
    let dir = tmp_dir("complete");
    let out = dir.join("sweep.jsonl");
    let first = explore(&grid(), &config(&out, false)).unwrap();
    let reference = std::fs::read_to_string(&out).unwrap();

    let second = explore(&grid(), &config(&out, true)).unwrap();
    assert_eq!(second.stats.solved, 0);
    assert_eq!(second.stats.resumed, first.stats.points);
    assert!(second.stats.render().contains("solved 0,"));
    assert_eq!(second.lines, first.lines);
    assert_eq!(second.frontier, first.frontier);
    assert_eq!(std::fs::read_to_string(&out).unwrap(), reference);
}

#[test]
fn resumed_invalid_points_are_counted_once() {
    // Regression: a resumed run over a grid with invalid axis combinations
    // used to count those points under both `resumed` and `invalid`,
    // breaking the stats partition (debug panic, wrong release stats).
    let dir = tmp_dir("invalid");
    let out = dir.join("sweep.jsonl");
    let mut g = grid();
    g.capacities = vec![48 << 10, 64 << 10, 128 << 10]; // 48 KB: invalid
    let first = explore(&g, &config(&out, false)).unwrap();
    assert_eq!(first.stats.invalid, 2);
    let reference = std::fs::read_to_string(&out).unwrap();

    let resumed = explore(&g, &config(&out, true)).unwrap();
    assert!(resumed.stats.balanced());
    assert_eq!(resumed.stats.solved, 0);
    assert_eq!(resumed.stats.resumed, 4, "only the valid points");
    assert_eq!(resumed.stats.invalid, 2);
    assert_eq!(resumed.stats.ok, first.stats.ok);
    assert_eq!(std::fs::read_to_string(&out).unwrap(), reference);
}

#[test]
fn torn_checkpoint_tail_re_solves_one_point_and_repairs_the_file() {
    let dir = tmp_dir("torn");
    let out = dir.join("sweep.jsonl");
    explore(&grid(), &config(&out, false)).unwrap();
    let reference = std::fs::read_to_string(&out).unwrap();

    // Tear the last checkpoint line mid-float, as a kill would.
    let ckpt = dir.join("sweep.jsonl.ckpt");
    let content = std::fs::read_to_string(&ckpt).unwrap();
    std::fs::write(&ckpt, &content[..content.len() - 4]).unwrap();

    let first = explore(&grid(), &config(&out, true)).unwrap();
    assert_eq!(first.stats.resumed, 5, "torn point is not trusted");
    assert_eq!(first.stats.solved, 1);
    assert_eq!(std::fs::read_to_string(&out).unwrap(), reference);

    // The fragment was truncated before appending, so the sidecars are
    // whole again: a second resume re-solves nothing.
    let second = explore(&grid(), &config(&out, true)).unwrap();
    assert_eq!(second.stats.solved, 0);
    assert_eq!(second.stats.resumed, 6);
    assert_eq!(std::fs::read_to_string(&out).unwrap(), reference);
}

#[test]
fn resume_against_a_changed_grid_fails_loudly() {
    let dir = tmp_dir("changed");
    let out = dir.join("sweep.jsonl");
    explore(&grid(), &config(&out, false)).unwrap();

    let mut edited = grid();
    edited.capacities.push(256 << 10);
    match explore(&edited, &config(&out, true)) {
        Err(ExploreError::Checkpoint(msg)) => {
            assert!(msg.contains("different grid"), "{msg}");
        }
        other => panic!("expected checkpoint mismatch, got {other:?}"),
    }
}

#[test]
fn without_resume_the_sidecars_are_overwritten_not_joined() {
    let dir = tmp_dir("overwrite");
    let out = dir.join("sweep.jsonl");
    explore(&grid(), &config(&out, false)).unwrap();
    let rerun = explore(&grid(), &config(&out, false)).unwrap();
    assert_eq!(rerun.stats.resumed, 0);
    assert_eq!(rerun.stats.solved, 6);
}
