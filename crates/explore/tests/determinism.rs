//! The engine's determinism contract: one grid, one output — regardless of
//! thread count, completion order, or whether output goes to disk.

use cactid_explore::{explore, ExploreConfig, Grid, OptVariant};
use std::path::PathBuf;

fn grid() -> Grid {
    let mut g = Grid::new();
    g.capacities = vec![32 << 10, 64 << 10, 128 << 10];
    g.blocks = vec![32, 64];
    g.associativities = vec![2, 4, 8];
    g.opts.push(OptVariant {
        label: "ed".to_string(),
        opt: cactid_core::OptimizationOptions {
            weight_dynamic: 100.0,
            max_area_overhead: 1.0,
            max_access_time_overhead: 2.0,
            ..cactid_core::OptimizationOptions::default()
        },
    });
    g
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("cactid-explore-determinism");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn jsonl_is_byte_identical_across_thread_counts() {
    let g = grid();
    let base = explore(
        &g,
        &ExploreConfig {
            threads: 1,
            pareto: true,
            ..ExploreConfig::default()
        },
    )
    .unwrap();
    assert_eq!(base.lines.len(), 36);
    assert!(base.stats.ok > 0, "grid must actually solve");
    assert!(!base.frontier.is_empty());

    for threads in [2, 8] {
        let run = explore(
            &g,
            &ExploreConfig {
                threads,
                pareto: true,
                ..ExploreConfig::default()
            },
        )
        .unwrap();
        assert_eq!(run.lines, base.lines, "{threads} threads diverged");
        assert_eq!(run.frontier, base.frontier);
        assert_eq!(run.stats.solved, base.stats.solved);
    }
}

#[test]
fn on_disk_output_matches_the_in_memory_lines() {
    let g = grid();
    let out = tmp("ondisk.jsonl");
    let report = explore(
        &g,
        &ExploreConfig {
            threads: 4,
            out: Some(&out),
            pareto: true,
            ..ExploreConfig::default()
        },
    )
    .unwrap();
    let file = std::fs::read_to_string(&out).unwrap();
    let expected: String = report.lines.iter().map(|l| format!("{l}\n")).collect();
    assert_eq!(file, expected);
    // Records are sorted by point index even though workers finish out of
    // order.
    let indices: Vec<usize> = file
        .lines()
        .map(|l| {
            l.strip_prefix("{\"idx\":")
                .and_then(|r| r[..r.find(',').unwrap()].parse().ok())
                .unwrap()
        })
        .collect();
    assert_eq!(indices, (0..36).collect::<Vec<_>>());
}

#[test]
fn winners_match_the_single_spec_optimizer() {
    // The engine's select() must pick exactly what cactid_core::optimize
    // picks for the same spec — the batch path changes nothing.
    let mut g = Grid::new();
    g.capacities = vec![64 << 10];
    g.associativities = vec![4];
    let report = explore(
        &g,
        &ExploreConfig {
            threads: 2,
            ..ExploreConfig::default()
        },
    )
    .unwrap();
    let spec = g.expand().unwrap().points[0].spec.clone().unwrap();
    let winner = cactid_core::optimize(&spec).unwrap();
    let line = &report.lines[0];
    assert!(line.contains(&format!(
        "\"org\":{{\"ndwl\":{},\"ndbl\":{},\"nspd\":{},\"deg_bl_mux\":{},\"deg_sa_mux\":{}}}",
        winner.org.ndwl,
        winner.org.ndbl,
        winner.org.nspd,
        winner.org.deg_bl_mux,
        winner.org.deg_sa_mux
    )));
    assert!(line.contains(&format!("\"access_ns\":{}", winner.access_ns())));
}
