//! The audit acceptance contract: whole-grid static classification agrees
//! exactly with the engine, never calls the solver, and the engine's
//! audit-skip mode changes accounting but not a single output byte.

use cactid_explore::{audit, explore, AuditVerdict, ExploreConfig, Grid, OptVariant};
use cactid_tech::{CellTechnology, TechNode};

/// A 192-point grid mixing all three verdicts: 48 KB points are invalid
/// (768 sets), the small capacities are feasible, and the large ones are
/// statically infeasible for at least some cell/node combinations.
fn mixed_grid() -> Grid {
    let mut g = Grid::new();
    g.capacities = vec![48 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 20, 1 << 30];
    g.blocks = vec![64, 128];
    g.associativities = vec![4, 8];
    g.banks = vec![1];
    g.nodes = vec![TechNode::N32, TechNode::N90];
    g.cells = vec![CellTechnology::Sram, CellTechnology::CommDram];
    // A second, identically-knobbed variant: every spec appears twice, so
    // the audit's dedup and the engine's memoization both participate.
    g.opts = vec![
        OptVariant::default_variant(),
        OptVariant {
            label: "twin".to_string(),
            ..OptVariant::default_variant()
        },
    ];
    g
}

fn status_of(line: &str) -> &'static str {
    for s in ["ok", "infeasible", "invalid"] {
        if line.contains(&format!("\"status\":\"{s}\"")) {
            return s;
        }
    }
    panic!("record has no status: {line}");
}

#[test]
fn audit_classifies_every_point_without_calling_solve() {
    let grid = mixed_grid();
    let solves_before = cactid_obs::snapshot()
        .counter("core.solve.calls")
        .unwrap_or(0);
    let report = audit(&grid).unwrap();
    let solves_after = cactid_obs::snapshot()
        .counter("core.solve.calls")
        .unwrap_or(0);
    assert_eq!(solves_after, solves_before, "audit must not call solve");

    assert_eq!(report.points.len(), 192);
    assert_eq!(
        report.invalid + report.infeasible + report.maybe_feasible,
        192,
        "every point classified"
    );
    assert!(report.invalid > 0, "grid should have invalid points");
    assert!(report.infeasible > 0, "grid should have infeasible points");
    assert!(
        report.maybe_feasible > 0,
        "grid should have feasible points"
    );
    // The duplicate opt variant halves the unique-spec count.
    assert_eq!(report.unique_specs * 2, 192 - report.invalid);
    // The histogram saw real organization-level rejections.
    assert!(report.reasons.total() > 0, "{:?}", report.reasons);
    assert!(report.spec_stage_rejected > 0);
    let rendered = report.render();
    assert!(rendered.contains("infeasibility histogram"), "{rendered}");
}

#[test]
fn audit_verdicts_match_a_full_engine_run_exactly() {
    let grid = mixed_grid();
    let verdicts = audit(&grid).unwrap();
    let run = explore(&grid, &ExploreConfig::default()).unwrap();
    assert_eq!(run.lines.len(), verdicts.points.len());

    for (p, line) in verdicts.points.iter().zip(&run.lines) {
        let status = status_of(line);
        match p.verdict {
            AuditVerdict::Invalid => assert_eq!(status, "invalid", "idx {}", p.idx),
            // Exactness: statically infeasible must mean engine-rejected...
            AuditVerdict::Infeasible => assert_eq!(status, "infeasible", "idx {}", p.idx),
            // ...and on this grid the engine rejects nothing the audit
            // missed, so the infeasible sets are identical.
            AuditVerdict::MaybeFeasible => assert_eq!(status, "ok", "idx {}", p.idx),
        }
    }
}

#[test]
fn audit_skip_is_byte_identical_across_thread_counts() {
    let grid = mixed_grid();
    let plain = explore(&grid, &ExploreConfig::default()).unwrap();
    assert!(plain.stats.audit_skipped == 0);

    for threads in [1, 2, 8] {
        let config = ExploreConfig {
            threads,
            audit: true,
            ..ExploreConfig::default()
        };
        let audited = explore(&grid, &config).unwrap();
        assert_eq!(
            audited.lines, plain.lines,
            "audit skip must not change output (threads {threads})"
        );
        assert!(audited.stats.balanced(), "{:?}", audited.stats);
        assert!(audited.stats.audit_skipped > 0);
        // Skipped points are exactly the engine-infeasible ones: with the
        // audit on, nothing is left for the solver to reject.
        assert_eq!(audited.stats.audit_skipped, plain.stats.infeasible);
        assert_eq!(audited.stats.infeasible, plain.stats.infeasible);
        assert_eq!(audited.stats.ok, plain.stats.ok);
        assert_eq!(audited.stats.invalid, plain.stats.invalid);
        assert_eq!(
            audited.stats.solved + audited.stats.memoized,
            plain.stats.solved + plain.stats.memoized - plain.stats.infeasible
        );
    }
}

#[test]
fn audit_skip_with_pareto_and_files_matches_plain_run() {
    let dir = std::env::temp_dir().join(format!("cactid-audit-eq-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let grid = mixed_grid();

    let plain = explore(
        &grid,
        &ExploreConfig {
            pareto: true,
            ..ExploreConfig::default()
        },
    )
    .unwrap();
    let out = dir.join("audited.jsonl");
    let audited = explore(
        &grid,
        &ExploreConfig {
            pareto: true,
            audit: true,
            threads: 2,
            out: Some(&out),
            ..ExploreConfig::default()
        },
    )
    .unwrap();
    assert_eq!(audited.lines, plain.lines);
    let on_disk = std::fs::read_to_string(&out).unwrap();
    let expected: String = plain.lines.iter().map(|l| format!("{l}\n")).collect();
    assert_eq!(on_disk, expected, "file output is byte-identical too");

    // A resumed run restores audit-skipped points from the checkpoint.
    let resumed = explore(
        &grid,
        &ExploreConfig {
            pareto: true,
            audit: true,
            resume: true,
            out: Some(&out),
            ..ExploreConfig::default()
        },
    )
    .unwrap();
    assert_eq!(resumed.lines, plain.lines);
    assert_eq!(resumed.stats.solved, 0, "{:?}", resumed.stats);
    assert_eq!(resumed.stats.audit_skipped, 0, "{:?}", resumed.stats);

    std::fs::remove_dir_all(&dir).ok();
}
