//! # cactid-units — compile-time dimensional analysis
//!
//! Every physical quantity the CACTI-D reproduction computes — Horowitz
//! delays, RC products, C·V² energies, leakage powers, Table 1 cell
//! parameters — is carried in a zero-cost newtype over `f64` holding the
//! value in **SI base units**. Arithmetic is implemented **only for
//! physically meaningful combinations**, so a ps/ns or fF/F mix-up, or a
//! formula that multiplies two capacitances, is a *compile error* rather
//! than a silently wrong number:
//!
//! ```
//! use cactid_units::{Farads, Ohms, Seconds, Volts, energy_cv2};
//!
//! let r = Ohms::from_si(2.0e3);
//! let c = Farads::ff(50.0);
//! let tau: Seconds = r * c;              // Ω × F = s
//! assert!(tau > Seconds::ps(99.0) && tau < Seconds::ps(101.0));
//!
//! let e = energy_cv2(c, Volts::from_si(1.0));   // ½·C·V²
//! assert!((e.value() - 25.0e-15).abs() < 1.0e-24);
//! ```
//!
//! An illegal combination does not compile:
//!
//! ```compile_fail
//! use cactid_units::{Farads, Seconds};
//! let t = Seconds::ns(1.0);
//! let c = Farads::ff(10.0);
//! let _nonsense = t * c; // ERROR: time × capacitance has no physical meaning
//! ```
//!
//! Neither does mixing dimensions in a sum:
//!
//! ```compile_fail
//! use cactid_units::{Joules, Watts};
//! let _ = Joules::pj(1.0) + Watts::mw(1.0); // ERROR: J + W
//! ```
//!
//! ## Conventions
//!
//! * Values are stored in SI base units (`#[repr(transparent)]` over `f64`),
//!   so the wrappers are zero-runtime-cost and bit-identical to the raw
//!   arithmetic they replace.
//! * Constructors take the customary engineering unit
//!   (`Seconds::ps(1.0)`, `Farads::ff(20.0)`, `Meters::um(0.5)`) and are
//!   `const fn`, usable in parameter tables.
//! * `Quantity / Quantity` of the *same* dimension yields a plain `f64`
//!   ratio; `f64 × Quantity` scales. `value()` unwraps and
//!   `from_si()` wraps — the escape hatches for optimizer inner loops,
//!   serialization boundaries and the occasional formula (optimal repeater
//!   sizing) whose intermediate dimensions are not worth naming.
//!
//! ## Adding a new dimension
//!
//! Declare it with `quantity!`, then wire its legal algebra with
//! `dim_mul!(A, B, C)` (reads "A × B = C" and derives the commuted product
//! and both quotients). See `DESIGN.md` §11 for the full legality table.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// The behavior every `quantity!` newtype shares, so generic code — the
/// `cactid-prove` interval algebra in particular — can abstract over the
/// concrete dimension while the `dim_mul!` legality table still decides
/// *which* products and quotients exist (via `where A: Mul<B, Output = C>`
/// bounds on the generic impls).
///
/// `f64` implements the trait too, as the dimensionless quantity, so
/// scalar factors compose with dimensioned ones in generic code.
pub trait Quantity: Copy + PartialOrd + fmt::Debug {
    /// The raw value in SI base units.
    fn si(self) -> f64;
    /// Wraps a raw SI value.
    fn of_si(v: f64) -> Self;
}

impl Quantity for f64 {
    #[inline]
    fn si(self) -> f64 {
        self
    }
    #[inline]
    fn of_si(v: f64) -> Self {
        v
    }
}

// Scale factors, kept as expressions (not decimal literals) so that the
// constructed values are bit-identical to the historic `units.rs`
// multiplier constants they replace.
const NM: f64 = 1e-9;
const UM: f64 = 1e-6;
const MM: f64 = 1e-3;

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        #[repr(transparent)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Wraps a raw value already expressed in SI base units.
            #[inline]
            #[must_use]
            pub const fn from_si(value: f64) -> Self {
                Self(value)
            }

            /// The raw value in SI base units — the escape hatch for
            /// arithmetic-heavy inner loops and serialization boundaries.
            #[inline]
            #[must_use]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Larger of two quantities (IEEE `f64::max` semantics).
            #[inline]
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Smaller of two quantities (IEEE `f64::min` semantics).
            #[inline]
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Absolute value.
            #[inline]
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// `true` when the value is neither infinite nor NaN.
            #[inline]
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// The least quantity strictly greater than `self` — one ulp
            /// up. Interval analyses (`cactid-prove`) round upper bounds
            /// outward with this.
            #[inline]
            #[must_use]
            pub fn next_up(self) -> Self {
                Self(self.0.next_up())
            }

            /// The greatest quantity strictly less than `self` — one ulp
            /// down, the outward rounding of a lower bound.
            #[inline]
            #[must_use]
            pub fn next_down(self) -> Self {
                Self(self.0.next_down())
            }
        }

        impl crate::Quantity for $name {
            #[inline]
            fn si(self) -> f64 {
                self.0
            }
            #[inline]
            fn of_si(v: f64) -> Self {
                Self(v)
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl MulAssign<f64> for $name {
            #[inline]
            fn mul_assign(&mut self, rhs: f64) {
                self.0 *= rhs;
            }
        }

        impl DivAssign<f64> for $name {
            #[inline]
            fn div_assign(&mut self, rhs: f64) {
                self.0 /= rhs;
            }
        }

        /// Same-dimension division yields the dimensionless ratio.
        impl Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                self.0.fmt(f)?;
                write!(f, " {}", $unit)
            }
        }
    };
}

/// Declares the physically meaningful product `$a × $b = $c`, deriving the
/// commuted product `$b × $a = $c` and both quotients `$c / $a = $b`,
/// `$c / $b = $a`.
macro_rules! dim_mul {
    ($a:ident, $b:ident, $c:ident) => {
        impl Mul<$b> for $a {
            type Output = $c;
            #[inline]
            fn mul(self, rhs: $b) -> $c {
                $c(self.0 * rhs.0)
            }
        }

        impl Mul<$a> for $b {
            type Output = $c;
            #[inline]
            fn mul(self, rhs: $a) -> $c {
                $c(self.0 * rhs.0)
            }
        }

        impl Div<$a> for $c {
            type Output = $b;
            #[inline]
            fn div(self, rhs: $a) -> $b {
                $b(self.0 / rhs.0)
            }
        }

        impl Div<$b> for $c {
            type Output = $a;
            #[inline]
            fn div(self, rhs: $b) -> $a {
                $a(self.0 / rhs.0)
            }
        }
    };
}

/// Declares the square `$a × $a = $c` (one product, one quotient).
macro_rules! dim_sq {
    ($a:ident, $c:ident) => {
        impl Mul for $a {
            type Output = $c;
            #[inline]
            fn mul(self, rhs: $a) -> $c {
                $c(self.0 * rhs.0)
            }
        }

        impl Div<$a> for $c {
            type Output = $a;
            #[inline]
            fn div(self, rhs: $a) -> $a {
                $a(self.0 / rhs.0)
            }
        }
    };
}

quantity!(
    /// A time in seconds.
    Seconds,
    "s"
);
quantity!(
    /// A length in meters.
    Meters,
    "m"
);
quantity!(
    /// An area in square meters.
    SquareMeters,
    "m²"
);
quantity!(
    /// A capacitance in farads.
    Farads,
    "F"
);
quantity!(
    /// A resistance in ohms.
    Ohms,
    "Ω"
);
quantity!(
    /// A voltage in volts.
    Volts,
    "V"
);
quantity!(
    /// A current in amperes.
    Amperes,
    "A"
);
quantity!(
    /// A charge in coulombs.
    Coulombs,
    "C"
);
quantity!(
    /// An energy in joules.
    Joules,
    "J"
);
quantity!(
    /// A power in watts.
    Watts,
    "W"
);
quantity!(
    /// A conductance in siemens.
    Siemens,
    "S"
);
quantity!(
    /// Capacitance per length (or per transistor width) in F/m — the
    /// width-normalized gate/drain capacitance of Table 1 device rows and
    /// the per-length capacitance of wire classes.
    FaradsPerMeter,
    "F/m"
);
quantity!(
    /// Resistance per length in Ω/m — wire resistance.
    OhmsPerMeter,
    "Ω/m"
);
quantity!(
    /// Resistance × width in Ω·m — the width-normalized effective
    /// switching resistance of a transistor (`R_on = r_eff / w`).
    OhmMeters,
    "Ω·m"
);
quantity!(
    /// Current per width in A/m — width-normalized drive and leakage
    /// currents.
    AmperesPerMeter,
    "A/m"
);
quantity!(
    /// Transconductance per width in S/m.
    SiemensPerMeter,
    "S/m"
);

// --- The legality table: every product the access-path physics needs. ---
dim_mul!(Ohms, Farads, Seconds); //        Ω × F = s        (RC product)
dim_mul!(Volts, Amperes, Watts); //        V × A = W        (leakage power)
dim_mul!(Watts, Seconds, Joules); //       W × s = J
dim_mul!(Farads, Volts, Coulombs); //      F × V = C        (switched charge)
dim_mul!(Volts, Coulombs, Joules); //      V × C = J        (C·V → ·V = energy)
dim_mul!(Amperes, Seconds, Coulombs); //   A × s = C        (I·t discharge)
dim_mul!(Ohms, Amperes, Volts); //         Ω × A = V
dim_mul!(FaradsPerMeter, Meters, Farads); //     F/m × m = F   (width/length scaling)
dim_mul!(OhmsPerMeter, Meters, Ohms); //         Ω/m × m = Ω
dim_mul!(AmperesPerMeter, Meters, Amperes); //   A/m × m = A
dim_mul!(SiemensPerMeter, Meters, Siemens); //   S/m × m = S
dim_mul!(Ohms, Meters, OhmMeters); //            Ω × m = Ω·m  (R_on = Ω·m / m)
dim_mul!(OhmMeters, FaradsPerMeter, Seconds); // Ω·m × F/m = s (FO4 time constant)
dim_mul!(OhmsPerMeter, SquareMeters, OhmMeters); // Ω/m × m² = Ω·m (ρ / cross-section)
dim_mul!(Seconds, Siemens, Farads); //           s × S = F    (τ = C / g_m)
dim_sq!(Meters, SquareMeters); //                m × m = m²

impl SquareMeters {
    /// Side length of a square of this area.
    #[inline]
    #[must_use]
    pub fn sqrt(self) -> Meters {
        Meters(self.0.sqrt())
    }
}

/// The canonical switching energy `½·C·V²` \[J\].
///
/// Kept as a named helper (rather than `Farads × Volts × Volts` at call
/// sites) so the 0.5 activity factor is impossible to forget and the
/// multiplication order is fixed: `((0.5·C)·V)·V`, matching the historic
/// untyped formulas bit for bit.
#[inline]
#[must_use]
pub fn energy_cv2(c: Farads, v: Volts) -> Joules {
    Joules(0.5 * c.0 * v.0 * v.0)
}

impl Seconds {
    /// `x` picoseconds.
    #[must_use]
    pub const fn ps(x: f64) -> Self {
        Self(x * 1e-12)
    }
    /// `x` nanoseconds.
    #[must_use]
    pub const fn ns(x: f64) -> Self {
        Self(x * 1e-9)
    }
    /// `x` microseconds.
    #[must_use]
    pub const fn us(x: f64) -> Self {
        Self(x * 1e-6)
    }
    /// `x` milliseconds.
    #[must_use]
    pub const fn ms(x: f64) -> Self {
        Self(x * 1e-3)
    }
}

impl Meters {
    /// `x` nanometers.
    #[must_use]
    pub const fn nm(x: f64) -> Self {
        Self(x * NM)
    }
    /// `x` micrometers.
    #[must_use]
    pub const fn um(x: f64) -> Self {
        Self(x * UM)
    }
    /// `x` millimeters.
    #[must_use]
    pub const fn mm(x: f64) -> Self {
        Self(x * MM)
    }
}

impl SquareMeters {
    /// `x` square millimeters.
    #[must_use]
    pub const fn mm2(x: f64) -> Self {
        Self(x * (MM * MM))
    }
}

impl Farads {
    /// `x` femtofarads.
    #[must_use]
    pub const fn ff(x: f64) -> Self {
        Self(x * 1e-15)
    }
    /// `x` picofarads.
    #[must_use]
    pub const fn pf(x: f64) -> Self {
        Self(x * 1e-12)
    }
}

impl Ohms {
    /// `x` kiloohms.
    #[must_use]
    pub const fn kohm(x: f64) -> Self {
        Self(x * 1e3)
    }
}

impl Volts {
    /// `x` millivolts.
    #[must_use]
    pub const fn mv(x: f64) -> Self {
        Self(x * 1e-3)
    }
}

impl Amperes {
    /// `x` microamperes.
    #[must_use]
    pub const fn ua(x: f64) -> Self {
        Self(x * 1e-6)
    }
    /// `x` nanoamperes.
    #[must_use]
    pub const fn na(x: f64) -> Self {
        Self(x * 1e-9)
    }
}

impl Joules {
    /// `x` femtojoules.
    #[must_use]
    pub const fn fj(x: f64) -> Self {
        Self(x * 1e-15)
    }
    /// `x` picojoules.
    #[must_use]
    pub const fn pj(x: f64) -> Self {
        Self(x * 1e-12)
    }
    /// `x` nanojoules.
    #[must_use]
    pub const fn nj(x: f64) -> Self {
        Self(x * 1e-9)
    }
}

impl Watts {
    /// `x` microwatts.
    #[must_use]
    pub const fn uw(x: f64) -> Self {
        Self(x * 1e-6)
    }
    /// `x` milliwatts.
    #[must_use]
    pub const fn mw(x: f64) -> Self {
        Self(x * 1e-3)
    }
}

impl FaradsPerMeter {
    /// `x` femtofarads per micrometer — the customary unit of
    /// width-normalized device capacitance and per-length wire capacitance.
    #[must_use]
    pub const fn ff_per_um(x: f64) -> Self {
        Self(x * (1e-15 / UM))
    }
}

impl OhmsPerMeter {
    /// `x` ohms per micrometer — the customary unit of wire resistance.
    #[must_use]
    pub const fn ohm_per_um(x: f64) -> Self {
        Self(x * (1.0 / UM))
    }
}

impl OhmMeters {
    /// `x` ohm-micrometers — the customary unit of width-normalized
    /// effective transistor resistance.
    #[must_use]
    pub const fn ohm_um(x: f64) -> Self {
        Self(x * UM)
    }
}

impl AmperesPerMeter {
    /// `x` microamperes per micrometer of width.
    #[must_use]
    pub const fn ua_per_um(x: f64) -> Self {
        Self(x * (1e-6 / UM))
    }
    /// `x` nanoamperes per micrometer of width.
    #[must_use]
    pub const fn na_per_um(x: f64) -> Self {
        Self(x * (1e-9 / UM))
    }
    /// `x` picoamperes per micrometer of width.
    #[must_use]
    pub const fn pa_per_um(x: f64) -> Self {
        Self(x * (1e-12 / UM))
    }
}

impl SiemensPerMeter {
    /// `x` millisiemens per micrometer of width.
    ///
    /// Deliberately left-associated (`x · 1e-3 / 1e-6`) to stay bit-identical
    /// to the historic inline conversion in the device tables.
    #[must_use]
    pub const fn ms_per_um(x: f64) -> Self {
        Self(x * 1e-3 / UM)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rc_product_is_seconds() {
        let r = Ohms::from_si(1.0e3);
        let c = Farads::pf(1.0);
        let t: Seconds = r * c;
        // Bit-identical to the raw product — the wrapper adds nothing.
        assert_eq!(t.value().to_bits(), (r.value() * c.value()).to_bits());
        assert!((t / Seconds::ns(1.0) - 1.0).abs() < 1e-12);
        // The quotients recover the factors (up to rounding).
        assert!(((t / r) / c - 1.0).abs() < 1e-12);
        assert!(((t / c) / r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn energy_cv2_matches_untyped_formula() {
        let c = 37.5e-15;
        let v = 1.1;
        let e = energy_cv2(Farads::from_si(c), Volts::from_si(v));
        // Bit-for-bit identical to the historic ((0.5·C)·V)·V ordering.
        assert_eq!(e.value().to_bits(), (0.5 * c * v * v).to_bits());
    }

    #[test]
    fn full_cv2_decomposes_through_coulombs() {
        let c = Farads::ff(100.0);
        let v = Volts::from_si(0.9);
        let e: Joules = c * v * v; // (F × V) × V = C × V = J
        assert_eq!(e.value().to_bits(), (c.value() * 0.9 * 0.9).to_bits());
    }

    #[test]
    fn per_width_scaling() {
        let c_gate = FaradsPerMeter::ff_per_um(1.0); // 1 fF/µm
        let w = Meters::um(3.0);
        let c: Farads = c_gate * w;
        assert!((c.value() - 3.0e-15).abs() < 1e-27);

        let r_eff = OhmMeters::ohm_um(2000.0); // 2 kΩ·µm
        let r: Ohms = r_eff / w;
        assert!((r.value() - 2000.0 / 3.0).abs() < 1e-9);

        let i_off = AmperesPerMeter::na_per_um(0.25);
        let leak: Watts = i_off * w * Volts::from_si(1.0);
        assert!((leak.value() - 0.75e-9).abs() < 1e-21);
    }

    #[test]
    fn fo4_shape_ohm_meters_times_farads_per_meter() {
        let r = OhmMeters::ohm_um(1180.0);
        let c = FaradsPerMeter::ff_per_um(0.95 * 3.0);
        let tf: Seconds = r * c;
        assert!(tf > Seconds::ps(1.0) && tf < Seconds::ps(10.0), "{tf}");
    }

    #[test]
    fn power_energy_time_triangle() {
        let e = Joules::nj(2.0);
        let t = Seconds::ms(64.0);
        let p: Watts = e / t;
        assert!((p.value() - 2.0e-9 / 64.0e-3).abs() < 1e-18);
        assert_eq!((p * t).value().to_bits(), (p.value() * t.value()).to_bits());
    }

    #[test]
    fn discharge_time_farads_volts_over_amps() {
        let c = Farads::ff(80.0);
        let swing = Volts::mv(200.0);
        let i = Amperes::ua(36.0);
        let t: Seconds = c * swing / i;
        assert!(t > Seconds::ps(100.0) && t < Seconds::ns(1.0), "{t}");
    }

    #[test]
    fn dimensionless_ratio_and_scalar_ops() {
        let a = Seconds::ns(4.0);
        let b = Seconds::ns(2.0);
        assert!((a / b - 2.0).abs() < 1e-12);
        assert_eq!(2.0 * b, a);
        assert_eq!(a / 2.0, b);
        assert_eq!(a - b, b);
        let mut acc = Seconds::ZERO;
        acc += a;
        acc -= b;
        assert_eq!(acc, b);
        assert_eq!(-b, Seconds::ns(-2.0));
    }

    #[test]
    fn area_algebra() {
        let w = Meters::um(2.0);
        let h = Meters::um(8.0);
        let a: SquareMeters = w * h;
        assert!((a.value() - 16.0e-12).abs() < 1e-24);
        assert_eq!(a / w, h);
        assert!((a.sqrt().value() - 4.0e-6).abs() < 1e-15);
    }

    #[test]
    fn constructors_match_historic_multipliers() {
        // The seed's `units.rs` computed hybrids as quotients of scale
        // constants; the constructors must be bit-identical.
        assert_eq!(
            FaradsPerMeter::ff_per_um(1.3).value().to_bits(),
            (1.3_f64 * (1e-15 / 1e-6)).to_bits()
        );
        assert_eq!(AmperesPerMeter::ua_per_um(1.0).value(), 1.0); // 1 µA/µm = 1 A/m
        assert_eq!(OhmsPerMeter::ohm_per_um(1.0).value(), 1e6);
        assert_eq!(SquareMeters::mm2(1.0).value(), 1e-6);
        assert_eq!(
            OhmMeters::ohm_um(3300.0).value().to_bits(),
            (3300.0_f64 * 1e-6).to_bits()
        );
    }

    #[test]
    fn outward_rounding_steps_one_ulp() {
        let t = Seconds::ns(1.0);
        assert!(t.next_up() > t);
        assert!(t.next_down() < t);
        // Exactly adjacent: nothing representable lies in between.
        assert_eq!(t.next_up().value(), t.value().next_up());
        assert_eq!(t.next_down().value(), t.value().next_down());
        assert_eq!(t.next_up().next_down(), t);
    }

    #[test]
    fn quantity_trait_roundtrips_and_covers_f64() {
        fn double<Q: Quantity>(q: Q) -> Q {
            Q::of_si(q.si() * 2.0)
        }
        assert_eq!(double(Seconds::ns(1.0)), Seconds::ns(2.0));
        assert_eq!(double(2.5_f64), 5.0);
        assert_eq!(Volts::of_si(0.9).si().to_bits(), 0.9_f64.to_bits());
    }

    #[test]
    fn ordering_and_reductions() {
        let xs = [Seconds::ps(3.0), Seconds::ps(1.0), Seconds::ps(2.0)];
        let sum: Seconds = xs.iter().copied().sum();
        assert!((sum / Seconds::ps(6.0) - 1.0).abs() < 1e-12);
        assert_eq!(xs[0].max(xs[1]), xs[0]);
        assert_eq!(xs[0].min(xs[1]), xs[1]);
        assert!(Seconds::ps(1.0) < Seconds::ns(1.0));
        assert!(!Seconds::from_si(f64::INFINITY).is_finite());
        assert_eq!(Seconds::from_si(-3.0e-12).abs(), Seconds::ps(3.0));
    }
}
